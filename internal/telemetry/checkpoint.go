package telemetry

import (
	"sort"

	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// Checkpoint state for the observability subsystem. The registry serializes
// every metric's identity (name, component, vc, kind, scale) along with its
// value, so metrics registered dynamically during the run (the span
// histograms) are re-created at restore; construction-time metrics are
// matched through the registry's idempotent registration. Wall-clock progress
// bookkeeping and the output streams themselves are not state — a restored
// run re-emits from the restore point on its own writers.

// SaveState serializes one metric's identity and value.
//
//sslint:allow snapshotcomplete — restored by Registry.LoadState, which re-registers each metric from the identity stream rather than decoding onto an existing one
func (m *metric) saveState(e *snapshot.Encoder) {
	e.Str(m.name)
	e.Str(m.comp)
	e.Int(m.vc)
	e.Int(int(m.kind))
	e.F64(m.scale)
	switch m.kind {
	case KindCounter:
		e.U64(m.c.Load())
		e.U64(m.lastC)
	case KindGauge:
		e.I64(m.g.Load())
		e.I64(m.lastG)
	case KindHist:
		nz := 0
		for i := 0; i < histBuckets; i++ {
			if m.h.Bucket(i) != 0 {
				nz++
			}
		}
		e.Int(nz)
		for i := 0; i < histBuckets; i++ {
			if n := m.h.Bucket(i); n != 0 {
				e.Int(i)
				e.U64(n)
			}
		}
		e.U64(m.h.Count())
		e.U64(m.h.Sum())
		e.U64(m.lastH)
	}
}

// SaveState serializes every registered metric in deterministic (name, comp,
// vc) order.
func (r *Registry) SaveState(e *snapshot.Encoder) {
	r.mu.Lock()
	list := append([]*metric(nil), r.sortLocked()...)
	r.mu.Unlock()
	e.Int(len(list))
	for _, m := range list {
		m.saveState(e)
	}
}

// LoadState restores metric values onto the rebuilt registry. Metrics absent
// from the rebuilt registry (registered dynamically after construction in the
// original run) are created; a kind clash with an existing registration is an
// error rather than the registry's usual panic.
func (r *Registry) LoadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		name := d.Str()
		comp := d.Str()
		vc := d.Int()
		kind := d.Int()
		scale := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		if kind < int(KindCounter) || kind > int(KindHist) {
			return d.Failf("metric %s/%s has invalid kind %d", name, comp, kind)
		}
		r.mu.Lock()
		existing, ok := r.index[metricKey(name, comp, vc)]
		r.mu.Unlock()
		if ok && existing.kind != Kind(kind) {
			return d.Failf("metric %s/%s is a %v in the snapshot, %v in the rebuilt registry",
				name, comp, Kind(kind), existing.kind)
		}
		m := r.register(name, comp, vc, Kind(kind), scale)
		switch m.kind {
		case KindCounter:
			m.c.v.Store(d.U64())
			m.lastC = d.U64()
		case KindGauge:
			m.g.v.Store(d.I64())
			m.lastG = d.I64()
		case KindHist:
			nz := d.Count()
			if d.Err() != nil {
				return d.Err()
			}
			for b := range m.h.buckets {
				m.h.buckets[b].Store(0)
			}
			for j := 0; j < nz; j++ {
				idx := d.Int()
				if d.Err() != nil {
					return d.Err()
				}
				if idx < 0 || idx >= histBuckets {
					return d.Failf("metric %s/%s bucket index %d out of range", name, comp, idx)
				}
				m.h.buckets[idx].Store(d.U64())
			}
			m.h.count.Store(d.U64())
			m.h.sum.Store(d.U64())
			m.lastH = d.U64()
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	return d.Err()
}

// SaveState serializes the telemetry hub: scheduling identity, the baseline
// flag for the next snapshot bin, the workload phase, the registry, and the
// span recorder's in-flight state.
func (t *Telemetry) SaveState(e *snapshot.Encoder) {
	// Under a parallel engine, flush the per-shard observation lanes first:
	// the checkpoint barrier guarantees every recorded stamp is below the
	// snapshot time, so sealing here emits exactly the serial prefix and the
	// serialized registry/span state matches a serial run's.
	t.seal()
	t.SaveOrder(e)
	e.Bool(t.first)
	t.mu.Lock()
	phase := t.phase
	t.mu.Unlock()
	e.Str(phase)
	t.reg.SaveState(e)
	if sp := t.opts.Spans; sp != nil {
		e.Bool(true)
		sp.saveState(e)
	} else {
		e.Bool(false)
	}
}

// LoadState restores the counterpart of SaveState.
func (t *Telemetry) LoadState(d *snapshot.Decoder) error {
	if err := t.LoadOrder(d); err != nil {
		return err
	}
	t.first = d.Bool()
	phase := d.Str()
	if d.Err() != nil {
		return d.Err()
	}
	t.mu.Lock()
	t.phase = phase
	t.mu.Unlock()
	if err := t.reg.LoadState(d); err != nil {
		return err
	}
	hasSpans := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasSpans != (t.opts.Spans != nil) {
		return d.Failf("snapshot spans state %v, rebuilt telemetry %v", hasSpans, t.opts.Spans != nil)
	}
	if hasSpans {
		return t.opts.Spans.loadState(d)
	}
	return d.Err()
}

// saveState serializes the span recorder's open spans (sorted by message ID
// so the bytes are independent of map iteration order) and the finished
// record count. The histogram caches rebuild lazily against the restored
// registry; the JSONL stream is output, not state.
func (sp *Spans) saveState(e *snapshot.Encoder) {
	ids := make([]uint64, 0, len(sp.live))
	for id := range sp.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Int(len(ids))
	for _, id := range ids {
		s := sp.live[id]
		e.U64(s.rec.Msg)
		e.Int(s.rec.App)
		e.Int(s.rec.Src)
		e.Int(s.rec.Dst)
		e.U64(s.rec.Queue)
		e.Int(len(s.rec.PerHop))
		for _, h := range s.rec.PerHop {
			e.U64(h.VCAlloc)
			e.U64(h.SWAlloc)
			e.U64(h.Xbar)
			e.U64(h.Output)
			e.U64(h.Wire)
		}
		e.U64(uint64(s.lastT))
		e.Int(s.hop)
	}
	e.U64(sp.records.Load())
}

func (sp *Spans) loadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	sp.live = make(map[uint64]*msgSpan, n)
	for i := 0; i < n; i++ {
		s := &msgSpan{}
		s.rec.Msg = d.U64()
		s.rec.App = d.Int()
		s.rec.Src = d.Int()
		s.rec.Dst = d.Int()
		s.rec.Queue = d.U64()
		hops := d.Count()
		if d.Err() != nil {
			return d.Err()
		}
		for h := 0; h < hops; h++ {
			s.rec.PerHop = append(s.rec.PerHop, SpanHop{
				VCAlloc: d.U64(),
				SWAlloc: d.U64(),
				Xbar:    d.U64(),
				Output:  d.U64(),
				Wire:    d.U64(),
			})
		}
		s.lastT = sim.Tick(d.U64())
		s.hop = d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := sp.live[s.rec.Msg]; dup {
			return d.Failf("duplicate open span for message %d", s.rec.Msg)
		}
		sp.live[s.rec.Msg] = s
	}
	sp.records.Store(d.U64())
	return d.Err()
}

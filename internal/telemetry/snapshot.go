package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Record is one time-binned snapshot line in the telemetry JSONL stream. The
// first bin emits a baseline record for every registered metric so consumers
// (cmd/ssparse, cmd/ssplot) learn the full component population; later bins
// emit only metrics whose value changed during the bin.
//
// Fields: T is the bin-end tick; V the cumulative value (counter total, gauge
// level, histogram observation count); D the change during this bin; U the
// scaled per-bin rate for counters registered with a scale factor (channel
// utilization in [0,1], offered/delivered flits per cycle per terminal).
// M (histograms only) is the mean observed value so far.
type Record struct {
	T      uint64  `json:"t"`
	Comp   string  `json:"comp"`
	Metric string  `json:"metric"`
	Kind   string  `json:"kind"`
	VC     int     `json:"vc"` // -1 when not VC-resolved
	V      float64 `json:"v"`
	D      float64 `json:"d"`
	U      float64 `json:"u,omitempty"`
	M      float64 `json:"m,omitempty"`
}

// snapshot writes one bin of records covering (prevTick, tick] to enc.
// baseline forces a record for every metric regardless of change.
func (r *Registry) snapshot(enc *json.Encoder, tick uint64, binTicks uint64, baseline bool) error {
	r.mu.Lock()
	list := r.sortLocked()
	r.mu.Unlock()
	for _, m := range list {
		rec := Record{T: tick, Comp: m.comp, Metric: m.name, Kind: m.kind.String(), VC: m.vc}
		changed := false
		switch m.kind {
		case KindCounter:
			v := m.c.Load()
			d := v - m.lastC
			m.lastC = v
			rec.V, rec.D = float64(v), float64(d)
			if m.scale != 0 && binTicks > 0 {
				rec.U = float64(d) * m.scale / float64(binTicks)
			}
			changed = d != 0
		case KindGauge:
			v := m.g.Load()
			d := v - m.lastG
			m.lastG = v
			rec.V, rec.D = float64(v), float64(d)
			changed = d != 0
		case KindHist:
			v := m.h.Count()
			d := v - m.lastH
			m.lastH = v
			rec.V, rec.D = float64(v), float64(d)
			rec.M = m.h.Mean()
			changed = d != 0
		}
		if changed || baseline {
			if err := enc.Encode(&rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadRecords parses a telemetry JSONL stream, calling fn for each record.
// Blank lines are skipped; a malformed line aborts with a line-numbered
// error.
func ReadRecords(rd io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"

	"supersim/internal/sim"
	"supersim/internal/types"
)

// The span recorder decomposes each sampled message's end-to-end latency into
// the time it spent in every pipeline stage of every hop. It rides the same
// probe points the tracer uses — one tracked flit per message (the head flit
// of packet 0) is timestamped at each lifecycle transition, and the time since
// the previous transition is charged to exactly one span kind. Because every
// tick between message creation and message delivery is charged somewhere,
// the decomposition is exact by construction: Finish asserts that the
// components sum to the end-to-end latency and panics on any unattributed
// tick, so a missing or misplaced probe cannot produce silently wrong
// attributions.
//
// Sampling reuses the tracer's message-ID hash (never the simulation PRNG),
// so span recording is observation-only and all transitions of a message are
// either all recorded or all skipped. Each finished message is folded online
// into per-hop, per-component registry histograms (metric span_<kind>,
// component app<N>, vc field = hop index) — these flow into the telemetry
// JSONL snapshot stream and the Prometheus exposition — and optionally
// emitted as one JSONL record for offline analysis with ssparse -spans and
// ssplot -plot breakdown.

// SpanKind identifies the pipeline stage a latency segment is charged to.
type SpanKind uint8

const (
	// SpanQueue is source queueing: message creation to first flit entering
	// the injection channel (injection-queue wait plus credit backpressure).
	SpanQueue SpanKind = iota
	// SpanVCAlloc is route computation plus the wait for an output VC grant.
	SpanVCAlloc
	// SpanSWAlloc is the wait for switch allocation after the VC grant: the
	// crossbar arbitration and, in the IQ architecture, downstream credits.
	SpanSWAlloc
	// SpanXbar is the crossbar (IQ/IOQ) or queue-transfer (OQ) traversal.
	SpanXbar
	// SpanOutput is output-queue residency waiting for downstream credits
	// (OQ/IOQ architectures only; structurally zero for IQ).
	SpanOutput
	// SpanWire is channel propagation plus serialization.
	SpanWire
	// SpanEject is the reassembly tail: tracked-flit arrival at the
	// destination until the message's last flit is delivered.
	SpanEject
)

func (k SpanKind) String() string {
	switch k {
	case SpanQueue:
		return "queue"
	case SpanVCAlloc:
		return "vc_alloc"
	case SpanSWAlloc:
		return "sw_alloc"
	case SpanXbar:
		return "xbar"
	case SpanOutput:
		return "output"
	case SpanWire:
		return "wire"
	case SpanEject:
		return "eject"
	}
	return "unknown"
}

// Span stream schema: the first line of a spans JSONL file is a header that
// names the schema and its version, so readers can reject streams written by
// an incompatible simulator instead of misparsing them. Bump SpanSchemaVersion
// on any incompatible record change.
const (
	SpanSchema        = "supersim-spans"
	SpanSchemaVersion = 1
)

// SpanHeader is the first line of a spans JSONL stream.
type SpanHeader struct {
	Schema  string  `json:"schema"`
	Version int     `json:"version"`
	Sample  float64 `json:"sample"`
}

// SpanHop is the latency decomposition of one hop on a message's path. All
// values are in ticks. Hop 0 is the source interface, where only Wire (the
// injection link) is populated; hops 1..N are routers.
type SpanHop struct {
	VCAlloc uint64 `json:"vc,omitempty"`
	SWAlloc uint64 `json:"sw,omitempty"`
	Xbar    uint64 `json:"xbar,omitempty"`
	Output  uint64 `json:"out,omitempty"`
	Wire    uint64 `json:"wire,omitempty"`
}

// Total returns the hop's summed latency.
func (h *SpanHop) Total() uint64 {
	return h.VCAlloc + h.SWAlloc + h.Xbar + h.Output + h.Wire
}

// SpanRecord is one message's exact latency decomposition:
// Queue + Eject + sum over PerHop of every component == E2E.
type SpanRecord struct {
	Msg    uint64    `json:"msg"`
	App    int       `json:"app"`
	Src    int       `json:"src"`
	Dst    int       `json:"dst"`
	Hops   int       `json:"hops"` // router hops = len(PerHop)-1
	E2E    uint64    `json:"e2e"`
	Queue  uint64    `json:"queue"`
	Eject  uint64    `json:"eject"`
	PerHop []SpanHop `json:"perhop"`
}

// ComponentSum re-adds every component of the record; readers use it to
// verify the exactness invariant against E2E.
func (r *SpanRecord) ComponentSum() uint64 {
	total := r.Queue + r.Eject
	for i := range r.PerHop {
		total += r.PerHop[i].Total()
	}
	return total
}

// msgSpan is the in-flight state of one sampled message: the record being
// built, the tick of the last recorded transition, and the current hop index.
type msgSpan struct {
	rec   SpanRecord
	lastT sim.Tick
	hop   int
}

type spanHistKey struct {
	kind SpanKind
	app  int
	hop  int
}

// Spans is the per-simulation span recorder. Create it with NewSpans, hand it
// to telemetry.Attach via Options.Spans, and components discover it with
// SpansFor. On a serial simulator all recording methods run on the simulation
// thread and apply immediately; only the Records counter is read concurrently
// (progress document).
//
// Under a parallel engine (partition), each recording call instead appends a
// value-captured operation — start, step, or finish — to the calling shard's
// lane, tagged with the executing event's sim.Stamp. Lanes are replayed in
// merged stamp order at seal time (see mergeByStamp), which is exactly the
// serial order, so the folded histograms, the JSONL stream, and the exactness
// assertion behave byte-identically to a serial run for any worker count.
type Spans struct {
	threshold uint64 // sample iff top 16 hash bits < threshold
	fraction  float64
	reg       *Registry // set by Attach; nil folds nothing
	//sslint:nosnapshot — JSONL output stream: a restored run re-emits on its own writer
	w *bufio.Writer
	c io.Closer
	//sslint:nosnapshot — JSONL output stream: a restored run re-emits on its own writer
	enc *json.Encoder
	//sslint:nosnapshot — output-stream bookkeeping (header emitted), not simulation state
	header bool

	live map[uint64]*msgSpan
	//sslint:nosnapshot — span recycling cache; holds no observable state
	free []*msgSpan
	//sslint:nosnapshot — histogram cache, rebuilt lazily against the restored registry
	hists map[spanHistKey]*Histogram
	//sslint:nosnapshot — histogram cache, rebuilt lazily against the restored registry
	e2e     map[int]*Histogram // per app
	records atomic.Uint64

	// lanes, when non-nil, switches recording to per-shard op buffering;
	// lane k is written only by shard k's goroutine and replayed by seal
	// between phases.
	//sslint:nosnapshot — per-shard scratch, drained by seal before every checkpoint
	lanes [][]spanOp
}

// spanOp opcodes.
const (
	opStart uint8 = iota
	opStep
	opFinish
)

// spanOp is one buffered recording operation, captured by value (messages and
// flits are pooled, so pointers must not be retained past the event).
//
//	opStart:  msg/app/src/dst identify the message, t is its CreateTime.
//	opStep:   msg and kind identify the transition, t is the current tick.
//	opFinish: t is the message's ReceiveTime, t2 its CreateTime.
type spanOp struct {
	stamp sim.Stamp
	msg   uint64
	t     sim.Tick
	t2    sim.Tick
	app   int
	src   int
	dst   int
	op    uint8
	kind  SpanKind
}

// NewSpans creates a span recorder sampling the given fraction of messages
// (clamped to [0,1]). w, when non-nil, receives the spans JSONL stream (one
// header line, then one record per finished message, in delivery order); if
// it also implements io.Closer, Close closes it. With a nil w the recorder
// only folds into the registry histograms.
func NewSpans(w io.Writer, fraction float64) *Spans {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	sp := &Spans{
		threshold: uint64(fraction * 65536),
		fraction:  fraction,
		live:      make(map[uint64]*msgSpan),
		hists:     make(map[spanHistKey]*Histogram),
		e2e:       make(map[int]*Histogram),
	}
	if w != nil {
		sp.w = bufio.NewWriterSize(w, 1<<16)
		sp.enc = json.NewEncoder(sp.w)
		if c, ok := w.(io.Closer); ok {
			sp.c = c
		}
	}
	return sp
}

// SampledMsg reports whether the message with the given ID is recorded. Same
// multiplicative hash as the tracer: a pure function of the ID, so every
// probe point agrees without coordination.
func (sp *Spans) SampledMsg(msgID uint64) bool {
	h := msgID * 0x9E3779B97F4A7C15
	return h>>48 < sp.threshold
}

// Tracked reports whether f is the tracked flit of a sampled message — the
// head flit of packet 0, the one flit whose transitions are timestamped.
func (sp *Spans) Tracked(f *types.Flit) bool {
	return f.Head && f.Pkt.ID == 0 && sp.SampledMsg(f.Pkt.Msg.ID)
}

// Records returns the number of finished span records.
func (sp *Spans) Records() uint64 { return sp.records.Load() }

// partition switches the recorder into per-shard op buffering across n
// shards. Called once, before the engine runs.
func (sp *Spans) partition(n int) {
	sp.lanes = make([][]spanOp, n)
}

// seal replays the buffered operation lanes in global stamp order — exactly
// the serial application order — and resets them. It must only be called
// while no shard goroutines run (end of run, or a checkpoint barrier); the
// engine's checkpoint barriers partition stamps by time, so sequential seals
// concatenate correctly and the live-span state carried across a seal is the
// serial state at that time.
func (sp *Spans) seal() {
	if sp.lanes == nil {
		return
	}
	mergeByStamp(sp.lanes, func(o *spanOp) sim.Stamp { return o.stamp }, func(o *spanOp) {
		switch o.op {
		case opStart:
			sp.applyStart(o.msg, o.app, o.src, o.dst, o.t)
		case opStep:
			sp.applyStep(o.msg, o.t, o.kind)
		case opFinish:
			// Counted when the op was recorded, so the progress document
			// stays live mid-run.
			sp.applyFinish(o.msg, o.t, o.t2)
		}
	})
	for k := range sp.lanes {
		sp.lanes[k] = sp.lanes[k][:0]
	}
}

// Start opens the span of a sampled message; the network interface calls it
// from SendMessage. The first segment is charged from the message's creation
// time, so app-side queueing before injection is part of the decomposition.
// s is the calling component's simulator, which supplies the shard lane and
// merge stamp under a parallel engine.
func (sp *Spans) Start(s *sim.Simulator, m *types.Message) {
	if !sp.SampledMsg(m.ID) {
		return
	}
	if sp.lanes != nil {
		k := s.ShardID()
		sp.lanes[k] = append(sp.lanes[k], spanOp{
			stamp: s.CurrentStamp(), op: opStart,
			msg: m.ID, app: m.App, src: m.Src, dst: m.Dst, t: m.CreateTime,
		})
		return
	}
	sp.applyStart(m.ID, m.App, m.Src, m.Dst, m.CreateTime)
}

func (sp *Spans) applyStart(msg uint64, app, src, dst int, createT sim.Tick) {
	var s *msgSpan
	if n := len(sp.free); n > 0 {
		s, sp.free = sp.free[n-1], sp.free[:n-1]
	} else {
		s = &msgSpan{}
	}
	s.rec = SpanRecord{Msg: msg, App: app, Src: src, Dst: dst, PerHop: s.rec.PerHop[:0]}
	s.lastT = createT
	s.hop = 0
	sp.live[msg] = s
}

// Step closes the open segment of a tracked flit's message: the time since
// the previous transition is charged to kind at the current hop. Callers
// check Tracked first. A SpanWire step (channel exit) advances to the next
// hop.
func (sp *Spans) Step(s *sim.Simulator, now sim.Tick, f *types.Flit, kind SpanKind) {
	if sp.lanes != nil {
		k := s.ShardID()
		sp.lanes[k] = append(sp.lanes[k], spanOp{
			stamp: s.CurrentStamp(), op: opStep,
			msg: f.Pkt.Msg.ID, t: now, kind: kind,
		})
		return
	}
	sp.applyStep(f.Pkt.Msg.ID, now, kind)
}

func (sp *Spans) applyStep(msg uint64, now sim.Tick, kind SpanKind) {
	s := sp.live[msg]
	if s == nil {
		panic(fmt.Sprintf("telemetry: span step %v for message %d without a started span — probe before SendMessage?", kind, msg))
	}
	if now < s.lastT {
		panic(fmt.Sprintf("telemetry: span step %v for message %d goes backwards: now %d, last transition %d", kind, msg, now, s.lastT))
	}
	d := now - s.lastT
	s.lastT = now
	if kind == SpanQueue {
		s.rec.Queue += d
		return
	}
	for len(s.rec.PerHop) <= s.hop {
		s.rec.PerHop = append(s.rec.PerHop, SpanHop{})
	}
	h := &s.rec.PerHop[s.hop]
	switch kind {
	case SpanVCAlloc:
		h.VCAlloc += d
	case SpanSWAlloc:
		h.SWAlloc += d
	case SpanXbar:
		h.Xbar += d
	case SpanOutput:
		h.Output += d
	case SpanWire:
		h.Wire += d
		s.hop++
	default:
		panic(fmt.Sprintf("telemetry: span step with invalid kind %d", kind))
	}
}

// Finish closes a sampled message's span at delivery (the workload calls it
// just before the message returns to the pool): the tail segment — tracked
// flit arrival to last flit delivered — is charged to eject, the exactness
// invariant is asserted, and the record is folded and emitted. Unsampled
// messages return immediately.
func (sp *Spans) Finish(s *sim.Simulator, m *types.Message) {
	if sp.lanes != nil {
		if !sp.SampledMsg(m.ID) {
			return
		}
		k := s.ShardID()
		sp.lanes[k] = append(sp.lanes[k], spanOp{
			stamp: s.CurrentStamp(), op: opFinish,
			msg: m.ID, t: m.ReceiveTime, t2: m.CreateTime,
		})
		sp.records.Add(1)
		return
	}
	if sp.applyFinish(m.ID, m.ReceiveTime, m.CreateTime) {
		sp.records.Add(1)
	}
}

// applyFinish reports whether a span was actually open (unsampled messages
// have none and are ignored).
func (sp *Spans) applyFinish(msg uint64, recvT, createT sim.Tick) bool {
	s := sp.live[msg]
	if s == nil {
		return false
	}
	delete(sp.live, msg)
	if recvT < s.lastT {
		panic(fmt.Sprintf("telemetry: span finish for message %d goes backwards: delivered %d, last transition %d", msg, recvT, s.lastT))
	}
	s.rec.Eject = recvT - s.lastT
	s.rec.E2E = recvT - createT
	s.rec.Hops = len(s.rec.PerHop) - 1
	if total := s.rec.ComponentSum(); total != s.rec.E2E {
		panic(fmt.Sprintf("telemetry: span decomposition of message %d is not exact: components sum to %d, end-to-end latency is %d (%+v)",
			msg, total, s.rec.E2E, s.rec))
	}
	sp.fold(&s.rec)
	sp.emit(&s.rec)
	sp.free = append(sp.free, s)
	return true
}

// fold adds one finished record to the per-hop, per-component registry
// histograms. Metric names are span_<kind>; the component is the traffic
// class (app<N>); the vc label carries the hop index (0 = source interface),
// or -1 for the hop-independent queue/eject/e2e metrics. Zero observations
// are folded too: a hop where a component took no time is exactly what a
// critical-path comparison needs to see.
func (sp *Spans) fold(r *SpanRecord) {
	if sp.reg == nil {
		return
	}
	sp.hist(SpanQueue, r.App, -1).Observe(r.Queue)
	sp.hist(SpanEject, r.App, -1).Observe(r.Eject)
	e2e := sp.e2e[r.App]
	if e2e == nil {
		e2e = sp.reg.Histogram("span_e2e", "app"+strconv.Itoa(r.App), -1)
		sp.e2e[r.App] = e2e
	}
	e2e.Observe(r.E2E)
	for i := range r.PerHop {
		h := &r.PerHop[i]
		sp.hist(SpanWire, r.App, i).Observe(h.Wire)
		if i == 0 {
			continue // the source interface has no router pipeline stages
		}
		sp.hist(SpanVCAlloc, r.App, i).Observe(h.VCAlloc)
		sp.hist(SpanSWAlloc, r.App, i).Observe(h.SWAlloc)
		sp.hist(SpanXbar, r.App, i).Observe(h.Xbar)
		sp.hist(SpanOutput, r.App, i).Observe(h.Output)
	}
}

// hist returns the cached histogram for (kind, app, hop), registering it on
// first use.
func (sp *Spans) hist(kind SpanKind, app, hop int) *Histogram {
	k := spanHistKey{kind, app, hop}
	h := sp.hists[k]
	if h == nil {
		h = sp.reg.Histogram("span_"+kind.String(), "app"+strconv.Itoa(app), hop)
		sp.hists[k] = h
	}
	return h
}

func (sp *Spans) emit(r *SpanRecord) {
	if sp.enc == nil {
		return
	}
	sp.writeHeader()
	if err := sp.enc.Encode(r); err != nil {
		panic(fmt.Sprintf("telemetry: span stream write failed: %v", err))
	}
}

func (sp *Spans) writeHeader() {
	if sp.header {
		return
	}
	sp.header = true
	if err := sp.enc.Encode(SpanHeader{Schema: SpanSchema, Version: SpanSchemaVersion, Sample: sp.fraction}); err != nil {
		panic(fmt.Sprintf("telemetry: span stream write failed: %v", err))
	}
}

// Close flushes and closes the spans stream. An empty stream still gets its
// header so readers can distinguish "no sampled messages" from truncation.
// Messages still live (a stalled run) are dropped — their spans never closed.
func (sp *Spans) Close() error {
	if sp.w == nil {
		return nil
	}
	sp.writeHeader()
	err := sp.w.Flush()
	if sp.c != nil {
		if cerr := sp.c.Close(); err == nil {
			err = cerr
		}
	}
	sp.w = nil
	sp.enc = nil
	return err
}

// ReadSpans parses a spans JSONL stream: it validates the header line
// (schema name and version) and calls fn for each record. A stream written
// by an incompatible schema version is rejected up front.
func ReadSpans(rd io.Reader, fn func(SpanRecord) error) (SpanHeader, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var hdr SpanHeader
	line, headerSeen := 0, false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if !headerSeen {
			if err := json.Unmarshal(raw, &hdr); err != nil {
				return hdr, fmt.Errorf("telemetry: spans line %d: %w", line, err)
			}
			if hdr.Schema != SpanSchema {
				return hdr, fmt.Errorf("telemetry: not a spans stream: schema %q, want %q", hdr.Schema, SpanSchema)
			}
			if hdr.Version != SpanSchemaVersion {
				return hdr, fmt.Errorf("telemetry: incompatible spans schema version %d (this reader supports %d)", hdr.Version, SpanSchemaVersion)
			}
			headerSeen = true
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return hdr, fmt.Errorf("telemetry: spans line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return hdr, err
		}
	}
	if err := sc.Err(); err != nil {
		return hdr, err
	}
	if !headerSeen {
		return hdr, fmt.Errorf("telemetry: spans stream has no header line")
	}
	return hdr, nil
}

package telemetry

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the power-of-two bucket mapping at every
// boundary: exact powers of two open a new bucket, one-less values close the
// previous one, and values at or above 2^63 land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1 << 10, 11},
		{1<<10 - 1, 10},
		{1<<62 - 1, 62},
		{1 << 62, 63},
		{1<<63 - 1, 63},
		{1 << 63, 64},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestBucketUpper checks the inclusive upper bounds line up with the index
// mapping: every value must satisfy BucketUpper(bucketIndex(v)-1) < v <=
// BucketUpper(bucketIndex(v)).
func TestBucketUpper(t *testing.T) {
	if got := BucketUpper(0); got != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", got)
	}
	if got := BucketUpper(1); got != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", got)
	}
	if got := BucketUpper(4); got != 15 {
		t.Errorf("BucketUpper(4) = %d, want 15", got)
	}
	if got := BucketUpper(64); got != math.MaxUint64 {
		t.Errorf("BucketUpper(64) = %d, want MaxUint64", got)
	}
	for _, v := range []uint64{1, 2, 3, 15, 16, 17, 1 << 40, 1<<63 - 1, 1 << 63} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("value %d fits in bucket %d, mapped to %d", v, i-1, i)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 3, 200} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 205 {
		t.Fatalf("sum = %d, want 205", h.Sum())
	}
	if got := h.Mean(); got != 41 {
		t.Fatalf("mean = %g, want 41", got)
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 2 || h.Bucket(2) != 1 || h.Bucket(8) != 1 {
		t.Fatalf("unexpected bucket layout: 0:%d 1:%d 2:%d 8:%d",
			h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(8))
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Add(3)
	g.Add(-5)
	if g.Load() != -2 {
		t.Fatalf("gauge = %d, want -2", g.Load())
	}
	g.Set(7)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
}

package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the live-introspection HTTP handler:
//
//	/            JSON run-progress document (also at /progress)
//	/metrics     Prometheus text exposition of the registry
//	/shards      JSON per-shard engine state (empty array on serial runs)
//	/debug/vars  standard expvar dump (ProgressMonitor gauges)
//	/debug/pprof standard pprof index, profile, heap, trace, ...
//
// All routes are read-only and safe to scrape while the simulation runs:
// metric values are atomics and the progress document is mutex-copied.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	progress := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(t.ProgressDoc())
	}
	mux.HandleFunc("/{$}", progress)
	mux.HandleFunc("/progress", progress)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		t.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		docs := t.ShardDocs()
		if docs == nil {
			docs = []ShardDoc{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(docs)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server on addr serving Handler in a background
// goroutine and returns immediately. Errors (port in use, server shutdown)
// are reported through errFn when non-nil. Intended for cmd/supersim's
// -telemetry-addr flag; tests use httptest with Handler directly.
func (t *Telemetry) Serve(addr string, errFn func(error)) {
	srv := &http.Server{Addr: addr, Handler: t.Handler()}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			if errFn != nil {
				errFn(err)
			}
		}
	}()
}

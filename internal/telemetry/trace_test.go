package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"supersim/internal/types"
)

func testFlit(msgID uint64, app, pkt, flit int) *types.Flit {
	m := &types.Message{ID: msgID, App: app}
	p := &types.Packet{Msg: m, ID: pkt}
	return &types.Flit{Pkt: p, ID: flit}
}

// TestTracerSampling pins the sampling contract: fraction 1 traces every
// message, fraction 0 traces none, intermediate fractions are a deterministic
// pure function of the message ID (both endpoints agree without coordination,
// and re-runs make identical decisions), and the observed rate is near the
// requested fraction.
func TestTracerSampling(t *testing.T) {
	all := NewTracer(&bytes.Buffer{}, 1)
	none := NewTracer(&bytes.Buffer{}, 0)
	quarter := NewTracer(&bytes.Buffer{}, 0.25)
	quarter2 := NewTracer(&bytes.Buffer{}, 0.25)
	sampled := 0
	for id := uint64(0); id < 4096; id++ {
		if !all.Sampled(id) {
			t.Fatalf("fraction 1 skipped message %d", id)
		}
		if none.Sampled(id) {
			t.Fatalf("fraction 0 sampled message %d", id)
		}
		if quarter.Sampled(id) != quarter2.Sampled(id) {
			t.Fatalf("sampling decision for message %d not deterministic", id)
		}
		if quarter.Sampled(id) {
			sampled++
		}
	}
	// The multiplicative hash should land within a few percent of 25% over 4k
	// consecutive IDs; a wide tolerance keeps this robust, it only has to
	// catch gross breakage (always/never/inverted).
	if sampled < 4096/8 || sampled > 4096/2 {
		t.Fatalf("fraction 0.25 sampled %d of 4096 messages", sampled)
	}
}

// TestTracerOutput validates the emitted document is well-formed Chrome
// trace JSON with paired begin/end events carrying the msg.pkt.flit id.
func TestTracerOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 1)
	f := testFlit(7, 1, 0, 2)
	tr.FlitSent(nil, 10, f, 3)
	tr.FlitReceived(nil, 25, f, 3)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 2 {
		t.Fatalf("events = %d, want 2", tr.Events())
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
			ID  string `json:"id"`
			Pid int    `json:"pid"`
			Tid int    `json:"tid"`
			Ts  uint64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2", len(doc.TraceEvents))
	}
	b, e := doc.TraceEvents[0], doc.TraceEvents[1]
	if b.Ph != "b" || e.Ph != "e" {
		t.Fatalf("phases = %q, %q, want b, e", b.Ph, e.Ph)
	}
	if b.ID != "7.0.2" || e.ID != "7.0.2" {
		t.Fatalf("ids = %q, %q, want 7.0.2 for both", b.ID, e.ID)
	}
	if b.Pid != 1 || b.Tid != 3 || b.Ts != 10 || e.Ts != 25 {
		t.Fatalf("unexpected event fields: begin=%+v end=%+v", b, e)
	}
}

// TestTracerEmptyClose makes sure a tracer that never sampled anything still
// produces a valid (empty) trace document.
func TestTracerEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty trace has unexpected events: %v", doc["traceEvents"])
	}
}

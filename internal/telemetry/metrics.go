package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Kind discriminates the metric flavors held by the registry.
type Kind uint8

const (
	KindCounter Kind = iota // monotonically increasing event count
	KindGauge               // instantaneous signed level (occupancy, depth)
	KindHist                // power-of-two-bucketed value distribution
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHist:
		return "hist"
	}
	return "unknown"
}

// Counter is a monotonically increasing event counter. All operations are
// atomic so the live HTTP endpoint can scrape mid-run without racing the
// simulation thread.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//sslint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//sslint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (negative to decrease).
//
//sslint:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge value.
//
//sslint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket 0 holds
// the value 0, bucket i (1..63) holds values in [2^(i-1), 2^i - 1], and
// bucket 64 holds values >= 2^63.
const histBuckets = 65

// Histogram records a distribution of non-negative integer values (latencies
// in ticks, queue depths) in power-of-two buckets. Observing is one atomic
// increment plus two atomic adds — cheap enough for per-flit paths — and the
// bucket layout is fixed, so two histograms are always mergeable and the
// exposition needs no configuration.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketIndex maps a value to its bucket: bits.Len64 is 0 for 0 and
// floor(log2(v))+1 otherwise, exactly the power-of-two bucket number.
func bucketIndex(v uint64) int {
	return bits.Len64(v)
}

// BucketUpper returns the inclusive upper bound of bucket i, or
// math.MaxUint64 for the overflow bucket.
func BucketUpper(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
//
//sslint:hotpath
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket returns the observation count of bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i].Load() }

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

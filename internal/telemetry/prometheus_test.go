package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the Prometheus text exposition byte-for-byte
// against a committed golden file: the metric name prefix, label set, TYPE
// lines, sparse histogram buckets with cumulative counts, and sort order are
// all part of the format contract scrapers depend on. Regenerate after an
// intentional format change with:
//
//	SUPERSIM_UPDATE_GOLDEN=1 go test ./internal/telemetry -run TestPrometheusGolden
func TestPrometheusGolden(t *testing.T) {
	r := newRegistry()
	r.Counter("chan_flits", "ch_r0p0_r1p0", -1, 2).Add(42)
	r.Counter("chan_flits", "ch_t0_r0p0", -1, 2) // idle channel: zero sample
	r.Gauge("vc_occupancy", "router_0", 0).Set(3)
	r.Gauge("vc_occupancy", "router_0", 1).Set(-1)
	h := r.Histogram("msg_latency", "app0", -1)
	for _, v := range []uint64{0, 1, 5, 5, 30, 1000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("SUPERSIM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with SUPERSIM_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

package telemetry

import (
	"strconv"

	"supersim/internal/sim"
	"supersim/internal/types"
)

// Probes are the component-facing face of the registry: each component asks
// for its probe once at construction (ForChannel, ForRouter, ...) and keeps
// the pointer. When telemetry is not attached the constructors return nil,
// and every call site guards with a nil check — the same discipline as
// internal/verify — so the disabled hot path is one predictable branch with
// zero allocations.

// ChannelProbe observes one flit channel.
type ChannelProbe struct {
	flits *Counter
}

// ForChannel returns the channel probe for the named channel, or nil when
// telemetry is disabled. period is the channel cycle time: with one flit slot
// per period ticks, the snapshot rate U = flits*period/bin is the channel's
// utilization in [0,1].
func ForChannel(s *sim.Simulator, name string, period sim.Tick) *ChannelProbe {
	t := For(s)
	if t == nil {
		return nil
	}
	return &ChannelProbe{
		flits: t.reg.Counter("chan_flits", name, -1, float64(period)),
	}
}

// FlitInjected records one flit entering the channel.
func (p *ChannelProbe) FlitInjected() { p.flits.Inc() }

// RouterProbe observes one router: per-VC input-buffer occupancy across all
// ports, cycles an eligible flit stalled waiting for downstream credit,
// VC-allocator grant/denial counts, and total flits forwarded.
type RouterProbe struct {
	occ     []*Gauge
	stall   *Counter
	grants  *Counter
	denials *Counter
	routed  *Counter
}

// ForRouter returns the router probe for the named router with numVCs
// virtual channels, or nil when telemetry is disabled.
func ForRouter(s *sim.Simulator, name string, numVCs int) *RouterProbe {
	t := For(s)
	if t == nil {
		return nil
	}
	p := &RouterProbe{
		occ:     make([]*Gauge, numVCs),
		stall:   t.reg.Counter("credit_stall_cycles", name, -1, 0),
		grants:  t.reg.Counter("vc_alloc_grants", name, -1, 0),
		denials: t.reg.Counter("vc_alloc_denials", name, -1, 0),
		routed:  t.reg.Counter("flits_routed", name, -1, 0),
	}
	for vc := range p.occ {
		p.occ[vc] = t.reg.Gauge("vc_occupancy", name, vc)
	}
	return p
}

// FlitBuffered records a flit entering an input buffer on the given VC.
func (p *RouterProbe) FlitBuffered(vc int) { p.occ[vc].Add(1) }

// FlitUnbuffered records a flit leaving an input buffer on the given VC.
func (p *RouterProbe) FlitUnbuffered(vc int) { p.occ[vc].Add(-1) }

// CreditStall records one cycle in which an otherwise-eligible flit could not
// advance for lack of downstream credit.
func (p *RouterProbe) CreditStall() { p.stall.Inc() }

// Alloc records one VC-allocation round: granted requests and denied
// (still-pending) requests.
func (p *RouterProbe) Alloc(granted, denied int) {
	if granted > 0 {
		p.grants.Add(uint64(granted))
	}
	if denied > 0 {
		p.denials.Add(uint64(denied))
	}
}

// FlitRouted records one flit forwarded out of the router.
func (p *RouterProbe) FlitRouted() { p.routed.Inc() }

// IfaceProbe observes one network interface: flits sent and received,
// injection cycles lost to backpressure (no credit on any eligible VC), and
// the source queue depth in packets.
type IfaceProbe struct {
	sent     *Counter
	received *Counter
	backpr   *Counter
	depth    *Gauge
	tr       *Tracer
	terminal int
}

// ForIface returns the interface probe for terminal id, or nil when
// telemetry is disabled.
func ForIface(s *sim.Simulator, name string, terminal int) *IfaceProbe {
	t := For(s)
	if t == nil {
		return nil
	}
	return &IfaceProbe{
		sent:     t.reg.Counter("iface_flits_sent", name, -1, 0),
		received: t.reg.Counter("iface_flits_received", name, -1, 0),
		backpr:   t.reg.Counter("inject_backpressure", name, -1, 0),
		depth:    t.reg.Gauge("source_queue_depth", name, -1),
		tr:       t.opts.Tracer,
		terminal: terminal,
	}
}

// FlitSent records a flit entering the network and, when tracing is enabled
// and the owning message is sampled, emits the trace begin event. s is the
// calling component's simulator (an adopted component's shard, not the
// construction-time host), which routes the record to the right trace lane.
func (p *IfaceProbe) FlitSent(s *sim.Simulator, now sim.Tick, f *types.Flit) {
	p.sent.Inc()
	if p.tr != nil && p.tr.Sampled(f.Pkt.Msg.ID) {
		p.tr.FlitSent(s, now, f, p.terminal)
	}
}

// FlitReceived records a flit delivered at this terminal and emits the trace
// end event for sampled messages.
func (p *IfaceProbe) FlitReceived(s *sim.Simulator, now sim.Tick, f *types.Flit) {
	p.received.Inc()
	if p.tr != nil && p.tr.Sampled(f.Pkt.Msg.ID) {
		p.tr.FlitReceived(s, now, f, f.Pkt.Msg.Src)
	}
}

// Backpressure records one injection attempt blocked by credit exhaustion.
func (p *IfaceProbe) Backpressure() { p.backpr.Inc() }

// QueueDepth records the source queue depth after a change.
func (p *IfaceProbe) QueueDepth(d int) { p.depth.Set(int64(d)) }

// WorkloadProbe observes one workload: per-application offered and delivered
// flit counts (snapshot rate U = flits per cycle per terminal) and the
// end-to-end message latency distribution.
type WorkloadProbe struct {
	t         *Telemetry
	offered   []*Counter
	delivered []*Counter
	latency   []*Histogram
}

// ForWorkload returns the workload probe for numApps applications over
// terminals endpoints with the given channel period, or nil when telemetry
// is disabled.
func ForWorkload(s *sim.Simulator, numApps, terminals int, period sim.Tick) *WorkloadProbe {
	t := For(s)
	if t == nil {
		return nil
	}
	scale := 0.0
	if terminals > 0 {
		scale = float64(period) / float64(terminals)
	}
	p := &WorkloadProbe{
		t:         t,
		offered:   make([]*Counter, numApps),
		delivered: make([]*Counter, numApps),
		latency:   make([]*Histogram, numApps),
	}
	for a := 0; a < numApps; a++ {
		comp := "app" + strconv.Itoa(a)
		p.offered[a] = t.reg.Counter("offered_flits", comp, -1, scale)
		p.delivered[a] = t.reg.Counter("delivered_flits", comp, -1, scale)
		p.latency[a] = t.reg.Histogram("msg_latency", comp, -1)
	}
	return p
}

// MessageOffered records a message created by application app with the given
// flit count.
func (p *WorkloadProbe) MessageOffered(app, flits int) {
	p.offered[app].Add(uint64(flits))
}

// MessageDelivered records a message delivered to application app: its flit
// count and its end-to-end latency in ticks.
func (p *WorkloadProbe) MessageDelivered(app, flits int, latency sim.Tick) {
	p.delivered[app].Add(uint64(flits))
	p.latency[app].Observe(uint64(latency))
}

// Phase records a workload phase transition in the progress document.
func (p *WorkloadProbe) Phase(phase string) { p.t.SetPhase(phase) }

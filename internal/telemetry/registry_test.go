package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentRegistrationDeterminism registers the same metric
// population from many goroutines in scrambled orders and checks that (a)
// duplicate registrations return the same metric object and (b) the
// Prometheus exposition is byte-identical regardless of registration order —
// the determinism contract consumers of the snapshot stream rely on.
func TestRegistryConcurrentRegistrationDeterminism(t *testing.T) {
	expositions := make([]string, 3)
	for trial := range expositions {
		r := newRegistry()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 16; i++ {
					// Scramble per-goroutine and per-trial so every run sees a
					// different interleaving of the same metric set.
					k := (i*7 + g*3 + trial) % 16
					comp := fmt.Sprintf("r%d", k%4)
					r.Counter("flits_routed", comp, -1, 0).Add(1)
					r.Gauge("vc_occupancy", comp, k%2).Set(int64(k % 2))
					r.Histogram("msg_latency", comp, -1)
				}
			}(g)
		}
		wg.Wait()
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		// Counter totals are deterministic too: 8 goroutines x 16 iterations
		// spread over 4 components = 32 increments each.
		if !strings.Contains(b.String(), `supersim_flits_routed{component="r0"} 32`) {
			t.Fatalf("trial %d: unexpected counter total in exposition:\n%s", trial, b.String())
		}
		expositions[trial] = b.String()
	}
	if expositions[0] != expositions[1] || expositions[1] != expositions[2] {
		t.Fatalf("exposition depends on registration order:\n--- a ---\n%s\n--- b ---\n%s",
			expositions[0], expositions[1])
	}
}

func TestRegistryDedupe(t *testing.T) {
	r := newRegistry()
	a := r.Counter("x", "c", -1, 0)
	b := r.Counter("x", "c", -1, 0)
	if a != b {
		t.Fatal("same (name, comp, vc) returned distinct counters")
	}
	if r.Counter("x", "c", 0, 0) == a || r.Counter("x", "d", -1, 0) == a {
		t.Fatal("distinct vc or comp returned the same counter")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := newRegistry()
	r.Counter("x", "c", -1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "c", -1)
}

package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/sim"
	"supersim/internal/types"
)

// spanMsg builds a 4-flit, 2-packet message whose tracked flit is the head
// flit of packet 0.
func spanMsg(id uint64) *types.Message {
	return types.NewMessage(id, 0, 2, 7, 4, 2)
}

// driveSpan walks one message through a two-hop lifecycle (source interface,
// then one router) with fixed per-stage delays and returns the delivery time.
func driveSpan(sp *Spans, m *types.Message) sim.Tick {
	f := m.Packets[0].Flits[0]
	sp.Start(nil, m)
	t := m.CreateTime
	t += 3
	sp.Step(nil, t, f, SpanQueue) // 3 ticks of source queueing
	t += 4
	sp.Step(nil, t, f, SpanWire) // injection link: hop 0 -> hop 1
	t += 5
	sp.Step(nil, t, f, SpanVCAlloc)
	t += 2
	sp.Step(nil, t, f, SpanSWAlloc)
	t += 1
	sp.Step(nil, t, f, SpanXbar)
	t += 2
	sp.Step(nil, t, f, SpanOutput)
	t += 4
	sp.Step(nil, t, f, SpanWire) // ejection link: hop 1 -> destination
	t += 6                       // reassembly tail
	m.ReceiveTime = t
	sp.Finish(nil, m)
	return t
}

func TestSpanKindStrings(t *testing.T) {
	want := map[SpanKind]string{
		SpanQueue: "queue", SpanVCAlloc: "vc_alloc", SpanSWAlloc: "sw_alloc",
		SpanXbar: "xbar", SpanOutput: "output", SpanWire: "wire", SpanEject: "eject",
		SpanKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestSampledMsgFractionEndpoints(t *testing.T) {
	all := NewSpans(nil, 1.0)
	none := NewSpans(nil, 0)
	clampedHi := NewSpans(nil, 2.5)  // clamps to 1
	clampedLo := NewSpans(nil, -0.5) // clamps to 0
	for id := uint64(0); id < 1000; id++ {
		if !all.SampledMsg(id) || !clampedHi.SampledMsg(id) {
			t.Fatalf("message %d not sampled at fraction 1.0", id)
		}
		if none.SampledMsg(id) || clampedLo.SampledMsg(id) {
			t.Fatalf("message %d sampled at fraction 0", id)
		}
	}
}

func TestSampledMsgFractionIsApproximate(t *testing.T) {
	sp := NewSpans(nil, 0.5)
	hits := 0
	const n = 10000
	for id := uint64(0); id < n; id++ {
		if sp.SampledMsg(id) {
			hits++
		}
	}
	if hits < n*4/10 || hits > n*6/10 {
		t.Fatalf("fraction 0.5 sampled %d of %d messages", hits, n)
	}
}

func TestTrackedSelectsHeadOfPacketZero(t *testing.T) {
	sp := NewSpans(nil, 1.0)
	m := spanMsg(1)
	tracked := 0
	for _, p := range m.Packets {
		for _, f := range p.Flits {
			if sp.Tracked(f) {
				tracked++
				if !f.Head || p.ID != 0 {
					t.Fatalf("tracked flit is not the head of packet 0: %v", f)
				}
			}
		}
	}
	if tracked != 1 {
		t.Fatalf("message has %d tracked flits, want exactly 1", tracked)
	}
	if none := NewSpans(nil, 0); none.Tracked(m.Packets[0].Flits[0]) {
		t.Fatal("unsampled message has a tracked flit")
	}
}

func TestSpanLifecycleExactAndEmitted(t *testing.T) {
	var buf bytes.Buffer
	sp := NewSpans(&buf, 1.0)
	m := spanMsg(1)
	m.CreateTime = 100
	driveSpan(sp, m)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if sp.Records() != 1 {
		t.Fatalf("records = %d, want 1", sp.Records())
	}

	var recs []SpanRecord
	hdr, err := ReadSpans(&buf, func(r SpanRecord) error { recs = append(recs, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != SpanSchema || hdr.Version != SpanSchemaVersion || hdr.Sample != 1.0 {
		t.Fatalf("header = %+v", hdr)
	}
	if len(recs) != 1 {
		t.Fatalf("stream has %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Msg != 1 || r.App != 0 || r.Src != 2 || r.Dst != 7 {
		t.Fatalf("record identity wrong: %+v", r)
	}
	if r.Queue != 3 || r.Eject != 6 || r.Hops != 1 || len(r.PerHop) != 2 {
		t.Fatalf("record decomposition wrong: %+v", r)
	}
	if h0 := r.PerHop[0]; h0.Wire != 4 || h0.Total() != 4 {
		t.Fatalf("hop 0 should carry only the injection wire: %+v", h0)
	}
	if h1 := r.PerHop[1]; h1.VCAlloc != 5 || h1.SWAlloc != 2 || h1.Xbar != 1 || h1.Output != 2 || h1.Wire != 4 {
		t.Fatalf("hop 1 decomposition wrong: %+v", h1)
	}
	if r.ComponentSum() != r.E2E || r.E2E != 27 {
		t.Fatalf("components sum to %d, e2e %d, want both 27", r.ComponentSum(), r.E2E)
	}
}

func TestSpanFoldsRegistryHistograms(t *testing.T) {
	sp := NewSpans(nil, 1.0)
	sp.reg = newRegistry()
	m := spanMsg(1)
	driveSpan(sp, m)

	checks := []struct {
		name string
		vc   int
		sum  uint64
	}{
		{"span_queue", -1, 3},
		{"span_eject", -1, 6},
		{"span_e2e", -1, 27},
		{"span_wire", 0, 4},
		{"span_wire", 1, 4},
		{"span_vc_alloc", 1, 5},
		{"span_sw_alloc", 1, 2},
		{"span_xbar", 1, 1},
		{"span_output", 1, 2},
	}
	for _, c := range checks {
		h := sp.reg.Histogram(c.name, "app0", c.vc)
		if h.Count() != 1 || h.Sum() != c.sum {
			t.Errorf("%s vc %d: count %d sum %d, want count 1 sum %d", c.name, c.vc, h.Count(), h.Sum(), c.sum)
		}
	}
	// The source-interface hop must not register router pipeline stages.
	if h := sp.reg.Histogram("span_vc_alloc", "app0", 0); h.Count() != 0 {
		t.Error("vc_alloc histogram registered for the source interface hop")
	}
}

func TestSpanStateReuseAcrossMessages(t *testing.T) {
	sp := NewSpans(nil, 1.0)
	for id := uint64(1); id <= 3; id++ {
		m := spanMsg(id)
		m.CreateTime = sim.Tick(id * 50)
		driveSpan(sp, m)
	}
	if sp.Records() != 3 {
		t.Fatalf("records = %d, want 3", sp.Records())
	}
	if len(sp.live) != 0 {
		t.Fatalf("%d spans still live after all messages finished", len(sp.live))
	}
	if len(sp.free) != 1 {
		t.Fatalf("freelist has %d entries, want 1 (serial reuse)", len(sp.free))
	}
}

func TestUnsampledMessagesIgnored(t *testing.T) {
	sp := NewSpans(nil, 0)
	m := spanMsg(1)
	sp.Start(nil, m)
	if len(sp.live) != 0 {
		t.Fatal("unsampled Start left live state")
	}
	sp.Finish(nil, m) // no span started: must be a silent no-op
	if sp.Records() != 0 {
		t.Fatal("unsampled Finish recorded a span")
	}
}

func TestSpanStepPanics(t *testing.T) {
	mustPanicContains(t, "without a started span", func() {
		sp := NewSpans(nil, 1.0)
		m := spanMsg(1)
		sp.Step(nil, 5, m.Packets[0].Flits[0], SpanQueue)
	})
	mustPanicContains(t, "goes backwards", func() {
		sp := NewSpans(nil, 1.0)
		m := spanMsg(1)
		m.CreateTime = 100
		sp.Start(nil, m)
		sp.Step(nil, 50, m.Packets[0].Flits[0], SpanQueue)
	})
	mustPanicContains(t, "invalid kind", func() {
		sp := NewSpans(nil, 1.0)
		m := spanMsg(1)
		sp.Start(nil, m)
		sp.Step(nil, 5, m.Packets[0].Flits[0], SpanEject) // eject is charged by Finish, not Step
	})
	mustPanicContains(t, "goes backwards", func() {
		sp := NewSpans(nil, 1.0)
		m := spanMsg(1)
		sp.Start(nil, m)
		sp.Step(nil, 10, m.Packets[0].Flits[0], SpanQueue)
		m.ReceiveTime = 5
		sp.Finish(nil, m)
	})
}

func mustPanicContains(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

func TestCloseWritesHeaderForEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	sp := NewSpans(&buf, 0.25)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, err := ReadSpans(&buf, func(SpanRecord) error { return nil })
	if err != nil {
		t.Fatalf("empty stream must still parse: %v", err)
	}
	if hdr.Sample != 0.25 {
		t.Fatalf("header sample = %v, want 0.25", hdr.Sample)
	}
	if err := sp.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

func TestReadSpansRejectsGarbageRecord(t *testing.T) {
	in := `{"schema":"supersim-spans","version":1,"sample":1}` + "\n" + `{not json}` + "\n"
	if _, err := ReadSpans(strings.NewReader(in), func(SpanRecord) error { return nil }); err == nil {
		t.Fatal("garbage record line accepted")
	}
	if _, err := ReadSpans(strings.NewReader("{not json}\n"), func(SpanRecord) error { return nil }); err == nil {
		t.Fatal("garbage header line accepted")
	}
}

func TestReadSpansPropagatesCallbackError(t *testing.T) {
	var buf bytes.Buffer
	sp := NewSpans(&buf, 1.0)
	driveSpan(sp, spanMsg(1))
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	wantErr := false
	_, err := ReadSpans(&buf, func(SpanRecord) error {
		wantErr = true
		return errStop
	})
	if err != errStop || !wantErr {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

var errStop = errorString("stop")

type errorString string

func (e errorString) Error() string { return string(e) }

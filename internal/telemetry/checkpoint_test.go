package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

func populatedRegistry() *Registry {
	r := newRegistry()
	r.Counter("flits_routed", "r0", -1, 2.0).Add(5)
	r.Gauge("vc_occupancy", "r0", 1).Set(-3)
	h := r.Histogram("msg_latency", "r0", -1)
	h.Observe(1)
	h.Observe(1)
	h.Observe(500)
	return r
}

func saveRegistry(r *Registry) []byte {
	e := snapshot.NewEncoder()
	r.SaveState(e)
	return e.Bytes()
}

func TestRegistryStateRoundTrip(t *testing.T) {
	data := saveRegistry(populatedRegistry())

	// Restore into a registry where one metric pre-exists (the
	// construction-time case) and the others are created by the load (the
	// dynamically-registered case).
	got := newRegistry()
	pre := got.Counter("flits_routed", "r0", -1, 2.0)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if pre.Load() != 5 {
		t.Fatalf("pre-registered counter = %d, want 5", pre.Load())
	}
	if g := got.Gauge("vc_occupancy", "r0", 1); g.Load() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Load())
	}
	if h := got.Histogram("msg_latency", "r0", -1); h.Count() != 3 || h.Sum() != 502 {
		t.Fatalf("histogram count %d sum %d", h.Count(), h.Sum())
	}
	if !bytes.Equal(saveRegistry(got), data) {
		t.Fatal("re-saved registry state is not byte-identical")
	}
}

func TestRegistryLoadRejectsCorruption(t *testing.T) {
	load := func(r *Registry, fn func(e *snapshot.Encoder)) error {
		e := snapshot.NewEncoder()
		fn(e)
		return r.LoadState(snapshot.NewDecoder(e.Bytes()))
	}

	clash := newRegistry()
	clash.Gauge("flits_routed", "r0", -1)
	if err := clash.LoadState(snapshot.NewDecoder(saveRegistry(populatedRegistry()))); err == nil ||
		!strings.Contains(err.Error(), "in the snapshot") {
		t.Fatalf("kind clash: err = %v", err)
	}

	if err := load(newRegistry(), func(e *snapshot.Encoder) {
		e.Int(1)
		e.Str("m")
		e.Str("c")
		e.Int(-1)
		e.Int(99) // invalid kind
		e.F64(0)
	}); err == nil || !strings.Contains(err.Error(), "invalid kind") {
		t.Fatalf("invalid kind: err = %v", err)
	}

	if err := load(newRegistry(), func(e *snapshot.Encoder) {
		e.Int(1)
		e.Str("m")
		e.Str("c")
		e.Int(-1)
		e.Int(int(KindHist))
		e.F64(0)
		e.Int(1)
		e.Int(histBuckets) // bucket index out of range
		e.U64(1)
	}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bucket index: err = %v", err)
	}

	data := saveRegistry(populatedRegistry())
	for _, n := range []int{1, len(data) / 2, len(data) - 1} {
		if err := newRegistry().LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

// buildTelemetry attaches a hub with a span recorder and a populated
// registry, matching on both sides of a restore.
func buildTelemetry(t *testing.T, withSpans bool) *Telemetry {
	t.Helper()
	s := sim.NewSimulator(1)
	opts := Options{}
	if withSpans {
		opts.Spans = NewSpans(nil, 1.0)
	}
	tl := Attach(s, opts)
	tl.Registry().Counter("flits_routed", "r0", -1, 0).Add(7)
	return tl
}

func saveTelemetry(tl *Telemetry) []byte {
	e := snapshot.NewEncoder()
	tl.SaveState(e)
	return e.Bytes()
}

func TestTelemetryStateRoundTrip(t *testing.T) {
	tl := buildTelemetry(t, true)
	tl.SetPhase("generating")
	tl.first = false
	sp := tl.Spans()
	sp.live[7] = &msgSpan{
		rec: SpanRecord{Msg: 7, App: 1, Src: 2, Dst: 3, Queue: 4,
			PerHop: []SpanHop{{VCAlloc: 1, SWAlloc: 2, Xbar: 3, Output: 4, Wire: 5}}},
		lastT: 50, hop: 1,
	}
	sp.live[3] = &msgSpan{rec: SpanRecord{Msg: 3, App: 0, Src: 9, Dst: 0}, lastT: 41}
	sp.records.Store(12)
	data := saveTelemetry(tl)

	got := buildTelemetry(t, true)
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if got.phase != "generating" || got.first {
		t.Fatalf("phase %q first %v after restore", got.phase, got.first)
	}
	gsp := got.Spans()
	if len(gsp.live) != 2 || gsp.Records() != 12 {
		t.Fatalf("restored spans: %d live, %d records", len(gsp.live), gsp.Records())
	}
	if s7 := gsp.live[7]; s7 == nil || s7.hop != 1 || s7.lastT != 50 || len(s7.rec.PerHop) != 1 ||
		s7.rec.PerHop[0].Wire != 5 {
		t.Fatalf("restored span 7: %+v", gsp.live[7])
	}
	if !bytes.Equal(saveTelemetry(got), data) {
		t.Fatal("re-saved telemetry state is not byte-identical")
	}
}

func TestTelemetryStateRoundTripWithoutSpans(t *testing.T) {
	tl := buildTelemetry(t, false)
	data := saveTelemetry(tl)
	got := buildTelemetry(t, false)
	if err := got.LoadState(snapshot.NewDecoder(data)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveTelemetry(got), data) {
		t.Fatal("re-saved telemetry state is not byte-identical")
	}
}

func TestTelemetryLoadRejectsSpansMismatch(t *testing.T) {
	data := saveTelemetry(buildTelemetry(t, true))
	got := buildTelemetry(t, false)
	if err := got.LoadState(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), "spans state") {
		t.Fatalf("err = %v, want spans mismatch", err)
	}
}

func TestSpansLoadRejectsDuplicate(t *testing.T) {
	e := snapshot.NewEncoder()
	e.Int(2)
	for i := 0; i < 2; i++ { // two open spans for the same message ID
		e.U64(5)
		e.Int(0)
		e.Int(1)
		e.Int(2)
		e.U64(3)
		e.Int(0) // no hops
		e.U64(10)
		e.Int(0)
	}
	e.U64(0)
	sp := NewSpans(nil, 1.0)
	if err := sp.loadState(snapshot.NewDecoder(e.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "duplicate open span") {
		t.Fatalf("err = %v, want duplicate-span error", err)
	}
}

func TestTelemetryLoadRejectsTruncation(t *testing.T) {
	data := saveTelemetry(buildTelemetry(t, true))
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		got := buildTelemetry(t, true)
		if err := got.LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"supersim/internal/sim"
)

// TestHandler exercises the live-introspection routes against an attached
// Telemetry: /metrics serves the Prometheus exposition, / and /progress serve
// the JSON progress document, and unknown paths 404.
func TestHandler(t *testing.T) {
	s := sim.NewSimulator(1)
	tel := Attach(s, Options{})
	tel.Registry().Counter("flits_routed", "router_0", -1, 0).Add(9)
	tel.SetPhase("blasting")
	tel.updateProgress(123)

	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, `supersim_flits_routed{component="router_0"} 9`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	for _, path := range []string{"/", "/progress"} {
		code, body, ctype := get(path)
		if code != http.StatusOK {
			t.Fatalf("%s status = %d", path, code)
		}
		if ctype != "application/json" {
			t.Fatalf("%s content-type = %q", path, ctype)
		}
		var p Progress
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatalf("%s body is not a progress document: %v", path, err)
		}
		if p.Tick != 123 || p.Phase != "blasting" || p.Metrics != 1 {
			t.Fatalf("%s progress = %+v", path, p)
		}
	}

	if code, _, _ := get("/no-such-route"); code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", code)
	}
	// pprof index must at least respond; its body is runtime-dependent.
	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
}

// TestAttachTwicePanics pins the one-attachment-per-simulator contract.
func TestAttachTwicePanics(t *testing.T) {
	s := sim.NewSimulator(1)
	Attach(s, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("second Attach did not panic")
		}
	}()
	Attach(s, Options{})
}

// TestForDisabled checks every probe constructor returns nil on a simulator
// without telemetry — the zero-cost disabled path components rely on.
func TestForDisabled(t *testing.T) {
	s := sim.NewSimulator(1)
	if For(s) != nil {
		t.Fatal("For returned non-nil on a bare simulator")
	}
	if ForChannel(s, "c", 1) != nil || ForRouter(s, "r", 2) != nil ||
		ForIface(s, "i", 0) != nil || ForWorkload(s, 1, 4, 1) != nil {
		t.Fatal("a probe constructor returned non-nil with telemetry disabled")
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// collect runs one snapshot bin and decodes the emitted records.
func collect(t *testing.T, r *Registry, tick, bin uint64, baseline bool) []Record {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := r.snapshot(enc, tick, bin, baseline); err != nil {
		t.Fatal(err)
	}
	var out []Record
	if err := ReadRecords(&buf, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSnapshotBaselineAndDeltas checks the stream contract: the baseline bin
// emits every registered metric (including idle ones, so consumers learn the
// component population), later bins emit only metrics that changed, and
// counter records carry per-bin deltas plus the scaled rate U.
func TestSnapshotBaselineAndDeltas(t *testing.T) {
	r := newRegistry()
	// Channel counter with scale = period 2: U = delta*2/bin.
	ch := r.Counter("chan_flits", "ch0", -1, 2)
	r.Counter("chan_flits", "ch1", -1, 2) // idle channel
	occ := r.Gauge("vc_occupancy", "r0", 0)
	lat := r.Histogram("msg_latency", "app0", -1)

	ch.Add(100)
	occ.Set(4)
	lat.Observe(10)
	lat.Observe(30)

	base := collect(t, r, 500, 500, true)
	if len(base) != 4 {
		t.Fatalf("baseline bin emitted %d records, want all 4", len(base))
	}
	byComp := map[string]Record{}
	for _, rec := range base {
		if rec.T != 500 {
			t.Fatalf("record tick = %d, want 500", rec.T)
		}
		byComp[rec.Comp+"/"+rec.Metric] = rec
	}
	got := byComp["ch0/chan_flits"]
	if got.V != 100 || got.D != 100 || got.U != 100*2.0/500 {
		t.Fatalf("ch0 record = %+v, want v=100 d=100 u=0.4", got)
	}
	if got := byComp["ch1/chan_flits"]; got.V != 0 || got.D != 0 || got.U != 0 {
		t.Fatalf("idle channel baseline = %+v, want zeros", got)
	}
	if got := byComp["r0/vc_occupancy"]; got.V != 4 || got.D != 4 || got.VC != 0 {
		t.Fatalf("gauge baseline = %+v, want v=4 d=4 vc=0", got)
	}
	if got := byComp["app0/msg_latency"]; got.V != 2 || got.M != 20 {
		t.Fatalf("histogram baseline = %+v, want count=2 mean=20", got)
	}

	// Quiet bin: nothing changed, nothing emitted.
	if recs := collect(t, r, 1000, 500, false); len(recs) != 0 {
		t.Fatalf("quiet bin emitted %d records, want 0", len(recs))
	}

	// Active bin: only the two metrics that moved appear, with bin-local
	// deltas (not cumulative ones).
	ch.Add(50)
	occ.Add(-3)
	recs := collect(t, r, 1500, 500, false)
	if len(recs) != 2 {
		t.Fatalf("active bin emitted %d records, want 2", len(recs))
	}
	for _, rec := range recs {
		switch rec.Comp {
		case "ch0":
			if rec.V != 150 || rec.D != 50 || rec.U != 50*2.0/500 {
				t.Fatalf("ch0 delta record = %+v, want v=150 d=50 u=0.2", rec)
			}
		case "r0":
			if rec.V != 1 || rec.D != -3 {
				t.Fatalf("gauge delta record = %+v, want v=1 d=-3", rec)
			}
		default:
			t.Fatalf("unexpected record in active bin: %+v", rec)
		}
	}
}

// TestSnapshotOrderDeterministic verifies records within a bin come out in
// sorted (metric, component, vc) order regardless of registration order.
func TestSnapshotOrderDeterministic(t *testing.T) {
	r := newRegistry()
	for _, comp := range []string{"z9", "a0", "m5"} {
		r.Counter("flits_routed", comp, -1, 0).Inc()
	}
	recs := collect(t, r, 100, 100, true)
	var comps []string
	for _, rec := range recs {
		comps = append(comps, rec.Comp)
	}
	if strings.Join(comps, ",") != "a0,m5,z9" {
		t.Fatalf("record order = %v, want sorted components", comps)
	}
}

func TestReadRecordsMalformedLine(t *testing.T) {
	in := strings.NewReader("{\"t\":1,\"comp\":\"c\",\"metric\":\"m\",\"kind\":\"counter\",\"vc\":-1,\"v\":1,\"d\":1}\nnot json\n")
	err := ReadRecords(in, func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-numbered parse error", err)
	}
}

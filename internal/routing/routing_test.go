package routing

import (
	"math/rand/v2"
	"testing"

	"supersim/internal/congestion"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// mapSensor is a test sensor with fixed per-(port,vc) values.
type mapSensor map[[2]int]float64

func (m mapSensor) Congestion(now sim.Tick, port, vc int) float64 {
	return m[[2]int{port, vc}]
}

func TestLeastCongestedPicksMinimum(t *testing.T) {
	sensor := mapSensor{{0, 0}: 5, {1, 0}: 2, {2, 0}: 9}
	rng := rand.New(rand.NewPCG(1, 2))
	cands := []Candidate{{0, 0}, {1, 0}, {2, 0}}
	got := LeastCongested(0, sensor, rng, cands)
	if got.Port != 1 {
		t.Fatalf("picked port %d, want 1", got.Port)
	}
}

func TestLeastCongestedTieBreakUniform(t *testing.T) {
	sensor := mapSensor{{0, 0}: 3, {1, 0}: 3, {2, 0}: 7}
	rng := rand.New(rand.NewPCG(3, 4))
	counts := map[int]int{}
	cands := []Candidate{{0, 0}, {1, 0}, {2, 0}}
	const trials = 2000
	for i := 0; i < trials; i++ {
		counts[LeastCongested(0, sensor, rng, cands).Port]++
	}
	if counts[2] != 0 {
		t.Fatalf("congested port chosen %d times", counts[2])
	}
	for _, p := range []int{0, 1} {
		if counts[p] < trials/3 || counts[p] > 2*trials/3 {
			t.Fatalf("tie break skewed: %v", counts)
		}
	}
}

func TestLeastCongestedSingle(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	got := LeastCongested(0, congestion.NullSensor{}, rng, []Candidate{{4, 1}})
	if got.Port != 4 || got.VC != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestLeastCongestedEmptyPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LeastCongested(0, congestion.NullSensor{}, rng, nil)
}

func TestLeastCongestedUsesDelayedView(t *testing.T) {
	// With a real credit sensor and latency, routing decisions see stale
	// values — the heart of the latent congestion detection case study.
	cs := congestion.NewCreditSensor(2, 1, congestion.PerPort, congestion.SourceOutput, 10)
	cs.AddOutput(100, 0, 0, 50) // port 0 becomes congested at t=100
	rng := rand.New(rand.NewPCG(9, 9))
	cands := []Candidate{{0, 0}, {1, 0}}
	// At t=105 the congestion is not yet visible: both look idle, ties split.
	sawZero := false
	for i := 0; i < 50; i++ {
		if LeastCongested(105, cs, rng, cands).Port == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("stale view should still sometimes pick port 0")
	}
	// At t=111 the congestion is visible: always port 1.
	for i := 0; i < 50; i++ {
		if got := LeastCongested(111, cs, rng, cands); got.Port != 1 {
			t.Fatalf("visible congestion ignored: %+v", got)
		}
	}
}

func TestAlgorithmFunc(t *testing.T) {
	alg := AlgorithmFunc(func(now sim.Tick, pkt *types.Packet, inPort, inVC int) Response {
		return Response{Port: inPort + 1, VCs: []int{inVC}}
	})
	resp := alg.Route(0, nil, 2, 1)
	if resp.Port != 3 || len(resp.VCs) != 1 || resp.VCs[0] != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

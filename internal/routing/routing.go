// Package routing defines the abstract routing algorithm API.
//
// Routing algorithms are modeled independently of router microarchitecture:
// a Network implementation supplies a routing algorithm constructor to every
// Router it builds, and the router instantiates one algorithm instance per
// input port (each input port's routing engine operates independently).
// Concrete algorithms live with their topologies (internal/network/...),
// since they own the address arithmetic; this package holds the interface
// and the congestion-comparison helpers shared by adaptive algorithms.
package routing

import (
	"math/rand/v2"

	"supersim/internal/congestion"
	"supersim/internal/sim"
	"supersim/internal/types"
)

// Response is a routing decision: the selected output port and the set of
// virtual channels the packet may be allocated on that port. VCs must be
// nonempty; routers verify that every VC was registered to the algorithm
// (part of the framework's error detection).
type Response struct {
	Port int
	VCs  []int
}

// Algorithm computes the routing decision for a packet's head flit arriving
// at a router input. Implementations may consult the router's congestion
// sensor and may record per-packet state in the pkt.Routing scratch (a
// fixed-size value, so recording state never allocates).
type Algorithm interface {
	// Route returns the output decision for pkt, whose head flit sits at
	// input (port, vc) of the router this algorithm instance belongs to.
	Route(now sim.Tick, pkt *types.Packet, inPort, inVC int) Response
}

// Ctor builds one algorithm instance for one input port of one router.
// Topology packages return closures of this type capturing their geometry.
// sensor is the owning router's congestion sensor; rng is the simulation's
// deterministic generator.
type Ctor func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) Algorithm

// Candidate is one (port, vc) option under consideration by an adaptive
// algorithm.
type Candidate struct {
	Port int
	VC   int
}

// LeastCongested returns the candidate with the lowest sensed congestion,
// breaking ties uniformly at random (using the deterministic simulation
// rng). It panics on an empty candidate list.
func LeastCongested(now sim.Tick, sensor congestion.Sensor, rng *rand.Rand, cands []Candidate) Candidate {
	if len(cands) == 0 {
		panic("routing: no candidates")
	}
	best := cands[0]
	bestVal := sensor.Congestion(now, best.Port, best.VC)
	ties := 1
	for _, c := range cands[1:] {
		v := sensor.Congestion(now, c.Port, c.VC)
		switch {
		case v < bestVal:
			best, bestVal, ties = c, v, 1
		case v == bestVal:
			// Reservoir sampling keeps tie-breaking uniform in one pass.
			ties++
			if rng.IntN(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

// AlgorithmFunc adapts a function to the Algorithm interface.
type AlgorithmFunc func(now sim.Tick, pkt *types.Packet, inPort, inVC int) Response

// Route implements Algorithm.
func (f AlgorithmFunc) Route(now sim.Tick, pkt *types.Packet, inPort, inVC int) Response {
	return f(now, pkt, inPort, inVC)
}

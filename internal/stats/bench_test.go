package stats

import (
	"testing"

	"supersim/internal/sim"
)

// BenchmarkPercentile measures the sorted-readout path over a large sample
// set, including one incremental re-sort.
func BenchmarkPercentile(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < 100000; i++ {
		r.Record(Sample{Start: 0, End: sim.Tick(i*2654435761) % 100000, Flits: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Percentile(99.9)
	}
}

// BenchmarkRecord measures sample append cost.
func BenchmarkRecord(b *testing.B) {
	r := NewRecorder()
	for i := 0; i < b.N; i++ {
		r.Record(Sample{Start: 0, End: sim.Tick(i), Flits: 1})
	}
}

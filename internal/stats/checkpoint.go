package stats

import (
	"supersim/internal/sim"
	"supersim/internal/snapshot"
)

// SaveState serializes the recorder's samples. The sorted latency vector is a
// lazily derived view, so only the raw samples are stored.
func (r *Recorder) SaveState(e *snapshot.Encoder) {
	e.Int(len(r.samples))
	for _, s := range r.samples {
		e.U64(uint64(s.Start))
		e.U64(uint64(s.End))
		e.Int(s.Flits)
		e.Int(s.Hops)
		e.Bool(s.NonMinimal)
		e.Int(s.App)
		e.Int(s.Src)
		e.Int(s.Dst)
	}
}

// LoadState restores the counterpart of SaveState.
func (r *Recorder) LoadState(d *snapshot.Decoder) error {
	n := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	r.samples = r.samples[:0]
	r.sorted = nil
	r.dirty = true
	for i := 0; i < n; i++ {
		s := Sample{
			Start:      sim.Tick(d.U64()),
			End:        sim.Tick(d.U64()),
			Flits:      d.Int(),
			Hops:       d.Int(),
			NonMinimal: d.Bool(),
			App:        d.Int(),
			Src:        d.Int(),
			Dst:        d.Int(),
		}
		if d.Err() != nil {
			return d.Err()
		}
		if s.End < s.Start {
			return d.Failf("sample %d ends (%d) before it starts (%d)", i, s.End, s.Start)
		}
		r.samples = append(r.samples, s)
	}
	return d.Err()
}

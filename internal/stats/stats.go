// Package stats implements the latency and throughput statistics gathered
// during a simulation's sampling window: aggregate summaries (mean,
// percentiles), full latency distributions (PDF/CDF/percentile curves) and
// time-binned series for transient analysis. Viewing latency distributions —
// not just average latency — is of critical importance to all the analysis
// tooling.
package stats

import (
	"fmt"
	"math"
	"sort"

	"supersim/internal/sim"
)

// Sample is one completed transfer (message or packet).
type Sample struct {
	Start      sim.Tick // creation time
	End        sim.Tick // delivery time
	Flits      int
	Hops       int
	NonMinimal bool
	App        int
	Src, Dst   int
}

// Latency returns the end-to-end latency in ticks.
func (s Sample) Latency() sim.Tick { return s.End - s.Start }

// Provider is implemented by application models that expose their sampled
// transfers (Blast, Pulse); tools use it to extract statistics generically.
type Provider interface {
	Stats() *Recorder
}

// Recorder accumulates samples.
type Recorder struct {
	samples []Sample
	sorted  []float64 // lazily built latency vector
	dirty   bool
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one sample. End must not precede Start.
func (r *Recorder) Record(s Sample) {
	if s.End < s.Start {
		panic(fmt.Sprintf("stats: sample ends (%d) before it starts (%d)", s.End, s.Start))
	}
	r.samples = append(r.samples, s)
	r.dirty = true
}

// Count returns the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Samples returns the raw samples (read-only).
func (r *Recorder) Samples() []Sample { return r.samples }

// Flits returns the total flits across all samples.
func (r *Recorder) Flits() int {
	n := 0
	for _, s := range r.samples {
		n += s.Flits
	}
	return n
}

// NonMinimalFraction returns the fraction of samples that took a non-minimal
// route.
func (r *Recorder) NonMinimalFraction() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range r.samples {
		if s.NonMinimal {
			n++
		}
	}
	return float64(n) / float64(len(r.samples))
}

func (r *Recorder) latencies() []float64 {
	if r.dirty || r.sorted == nil {
		r.sorted = r.sorted[:0]
		for _, s := range r.samples {
			r.sorted = append(r.sorted, float64(s.Latency()))
		}
		sort.Float64s(r.sorted)
		r.dirty = false
	}
	return r.sorted
}

// Mean returns the average latency; NaN with no samples.
func (r *Recorder) Mean() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, s := range r.samples {
		sum += float64(s.Latency())
	}
	return sum / float64(len(r.samples))
}

// Min returns the smallest latency; NaN with no samples.
func (r *Recorder) Min() float64 {
	l := r.latencies()
	if len(l) == 0 {
		return math.NaN()
	}
	return l[0]
}

// Max returns the largest latency; NaN with no samples.
func (r *Recorder) Max() float64 {
	l := r.latencies()
	if len(l) == 0 {
		return math.NaN()
	}
	return l[len(l)-1]
}

// Percentile returns the p-th percentile latency (p in [0, 100]), using
// nearest-rank on the sorted latencies. NaN with no samples.
func (r *Recorder) Percentile(p float64) float64 {
	l := r.latencies()
	if len(l) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	rank := int(math.Ceil(p / 100 * float64(len(l))))
	if rank < 1 {
		rank = 1
	}
	return l[rank-1]
}

// MeanHops returns the average hop count; NaN with no samples.
func (r *Recorder) MeanHops() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	sum := 0
	for _, s := range r.samples {
		sum += s.Hops
	}
	return float64(sum) / float64(len(r.samples))
}

// Summary is the aggregate view of a recorder, convenient for tabulation.
type Summary struct {
	Count                int
	Mean, Min, Max       float64
	P50, P90, P99        float64
	P999, P9999          float64
	MeanHops, NonMinimal float64
	TotalFlits           int
}

// Summarize computes the standard aggregate set.
func (r *Recorder) Summarize() Summary {
	return Summary{
		Count:      r.Count(),
		Mean:       r.Mean(),
		Min:        r.Min(),
		Max:        r.Max(),
		P50:        r.Percentile(50),
		P90:        r.Percentile(90),
		P99:        r.Percentile(99),
		P999:       r.Percentile(99.9),
		P9999:      r.Percentile(99.99),
		MeanHops:   r.MeanHops(),
		NonMinimal: r.NonMinimalFraction(),
		TotalFlits: r.Flits(),
	}
}

// PercentileCurve returns (percentile, latency) points for the percentile
// distribution plot, at the given percentile values.
func (r *Recorder) PercentileCurve(points []float64) [][2]float64 {
	out := make([][2]float64, len(points))
	for i, p := range points {
		out[i] = [2]float64{p, r.Percentile(p)}
	}
	return out
}

// CDF returns (latency, cumulative fraction) points over the sample set.
func (r *Recorder) CDF() [][2]float64 {
	l := r.latencies()
	if len(l) == 0 {
		return nil
	}
	var out [][2]float64
	for i, v := range l {
		// keep only the last point of runs of equal latency
		if i+1 < len(l) && l[i+1] == v {
			continue
		}
		out = append(out, [2]float64{v, float64(i+1) / float64(len(l))})
	}
	return out
}

// PDF returns a bucketed probability density: `buckets` equal-width bins
// over [min, max], each point (bucket center, fraction).
func (r *Recorder) PDF(buckets int) [][2]float64 {
	l := r.latencies()
	if len(l) == 0 || buckets <= 0 {
		return nil
	}
	lo, hi := l[0], l[len(l)-1]
	if hi == lo {
		return [][2]float64{{lo, 1}}
	}
	width := (hi - lo) / float64(buckets)
	counts := make([]int, buckets)
	for _, v := range l {
		b := int((v - lo) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	out := make([][2]float64, buckets)
	for b, c := range counts {
		out[b] = [2]float64{lo + (float64(b)+0.5)*width, float64(c) / float64(len(l))}
	}
	return out
}

// TimeSeries bins samples by end time and returns (bin center tick, mean
// latency) points — the transient view used to watch one application disturb
// another.
func (r *Recorder) TimeSeries(binWidth sim.Tick) [][2]float64 {
	if len(r.samples) == 0 || binWidth == 0 {
		return nil
	}
	type agg struct {
		sum float64
		n   int
	}
	bins := map[uint64]*agg{}
	var minB, maxB uint64
	first := true
	for _, s := range r.samples {
		b := uint64(s.End / binWidth)
		a := bins[b]
		if a == nil {
			a = &agg{}
			bins[b] = a
		}
		a.sum += float64(s.Latency())
		a.n++
		if first || b < minB {
			minB = b
		}
		if first || b > maxB {
			maxB = b
		}
		first = false
	}
	var out [][2]float64
	for b := minB; b <= maxB; b++ {
		if a := bins[b]; a != nil {
			center := float64(b)*float64(binWidth) + float64(binWidth)/2
			out = append(out, [2]float64{center, a.sum / float64(a.n)})
		}
	}
	return out
}

// ChannelCounter is the view of a link needed for utilization statistics
// (satisfied by *channel.Channel).
type ChannelCounter interface {
	Injected() uint64
	Period() sim.Tick
}

// ChannelUtilization summarizes link usage over a time window: the mean,
// min and max utilization across all channels, each as a fraction of the
// channel's flit capacity for the window. Counters must be snapshotted by
// the caller at the window start (pass the deltas).
func ChannelUtilization(flits []uint64, periods []sim.Tick, window sim.Tick) (mean, min, max float64) {
	if len(flits) == 0 || window == 0 {
		return 0, 0, 0
	}
	if len(flits) != len(periods) {
		panic("stats: flits/periods length mismatch")
	}
	min = math.Inf(1)
	sum := 0.0
	for i, f := range flits {
		capacity := float64(window) / float64(periods[i])
		u := float64(f) / capacity
		sum += u
		min = math.Min(min, u)
		max = math.Max(max, u)
	}
	return sum / float64(len(flits)), min, max
}

// Throughput returns the accepted load as a fraction of terminal channel
// capacity: flits delivered per terminal per channel cycle over the window.
func Throughput(totalFlits int, terminals int, window sim.Tick, chanPeriod sim.Tick) float64 {
	if terminals <= 0 || window == 0 {
		return 0
	}
	cycles := float64(window) / float64(chanPeriod)
	return float64(totalFlits) / (float64(terminals) * cycles)
}

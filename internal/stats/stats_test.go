package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"supersim/internal/sim"
)

func rec(latencies ...sim.Tick) *Recorder {
	r := NewRecorder()
	for i, l := range latencies {
		r.Record(Sample{Start: 100, End: 100 + l, Flits: 1, Hops: 2 + i%3, App: 0, Src: i, Dst: i + 1})
	}
	return r
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Count() != 0 || r.Flits() != 0 {
		t.Fatal("counts")
	}
	for _, v := range []float64{r.Mean(), r.Min(), r.Max(), r.Percentile(50), r.MeanHops()} {
		if !math.IsNaN(v) {
			t.Fatalf("empty stats should be NaN, got %v", v)
		}
	}
	if r.NonMinimalFraction() != 0 {
		t.Fatal("nonmin of empty")
	}
	if r.CDF() != nil || r.PDF(10) != nil || r.TimeSeries(10) != nil {
		t.Fatal("distributions of empty should be nil")
	}
}

func TestMeanMinMax(t *testing.T) {
	r := rec(10, 20, 30, 40)
	if r.Mean() != 25 || r.Min() != 10 || r.Max() != 40 {
		t.Fatalf("mean=%v min=%v max=%v", r.Mean(), r.Min(), r.Max())
	}
	if r.Count() != 4 || r.Flits() != 4 {
		t.Fatal("count/flits")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	r := rec(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := map[float64]float64{0: 1, 10: 1, 50: 5, 90: 9, 100: 10, 99: 10}
	for p, want := range cases {
		if got := r.Percentile(p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	r := rec(1)
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) should panic", p)
				}
			}()
			r.Percentile(p)
		}()
	}
}

func TestRecordRejectsBackwardsSample(t *testing.T) {
	r := NewRecorder()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Record(Sample{Start: 10, End: 5})
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(lats []uint16, a, b uint8) bool {
		if len(lats) == 0 {
			return true
		}
		r := NewRecorder()
		for _, l := range lats {
			r.Record(Sample{Start: 0, End: sim.Tick(l), Flits: 1})
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		// monotone, and bounded by min/max
		return r.Percentile(pa) <= r.Percentile(pb) &&
			r.Percentile(0) == r.Min() && r.Percentile(100) == r.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecorderIncrementalSortInvalidation(t *testing.T) {
	r := rec(5, 1)
	if r.Percentile(100) != 5 {
		t.Fatal("initial sort")
	}
	r.Record(Sample{Start: 0, End: 100, Flits: 1})
	if r.Percentile(100) != 100 {
		t.Fatal("recorder did not re-sort after new sample")
	}
}

func TestNonMinimalFraction(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 10; i++ {
		r.Record(Sample{Start: 0, End: 1, NonMinimal: i < 3})
	}
	if got := r.NonMinimalFraction(); got != 0.3 {
		t.Fatalf("nonmin = %v", got)
	}
}

func TestMeanHops(t *testing.T) {
	r := NewRecorder()
	r.Record(Sample{Start: 0, End: 1, Hops: 2})
	r.Record(Sample{Start: 0, End: 1, Hops: 4})
	if r.MeanHops() != 3 {
		t.Fatalf("MeanHops = %v", r.MeanHops())
	}
}

func TestSummarize(t *testing.T) {
	r := rec(10, 20, 30)
	s := r.Summarize()
	if s.Count != 3 || s.Mean != 20 || s.Min != 10 || s.Max != 30 || s.TotalFlits != 3 {
		t.Fatalf("summary %+v", s)
	}
	if s.P50 != 20 || s.P999 != 30 {
		t.Fatalf("summary percentiles %+v", s)
	}
}

func TestPercentileCurve(t *testing.T) {
	r := rec(1, 2, 3, 4)
	curve := r.PercentileCurve([]float64{25, 50, 100})
	if len(curve) != 3 || curve[0][1] != 1 || curve[2][1] != 4 {
		t.Fatalf("curve %v", curve)
	}
}

func TestCDF(t *testing.T) {
	r := rec(10, 10, 20, 40)
	cdf := r.CDF()
	want := [][2]float64{{10, 0.5}, {20, 0.75}, {40, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("cdf %v", cdf)
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("cdf %v, want %v", cdf, want)
		}
	}
}

func TestPDFSumsToOne(t *testing.T) {
	r := rec(1, 5, 9, 13, 17, 21, 25, 29)
	pdf := r.PDF(4)
	total := 0.0
	for _, p := range pdf {
		total += p[1]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("pdf mass = %v", total)
	}
	if len(pdf) != 4 {
		t.Fatalf("buckets = %d", len(pdf))
	}
}

func TestPDFDegenerate(t *testing.T) {
	r := rec(7, 7, 7)
	pdf := r.PDF(10)
	if len(pdf) != 1 || pdf[0][0] != 7 || pdf[0][1] != 1 {
		t.Fatalf("degenerate pdf %v", pdf)
	}
	if r.PDF(0) != nil {
		t.Fatal("zero buckets")
	}
}

func TestTimeSeriesBins(t *testing.T) {
	r := NewRecorder()
	// bin width 100: ends at 50 (lat 10), 150+160 (lat 20, 40), 350 (lat 5)
	r.Record(Sample{Start: 40, End: 50})
	r.Record(Sample{Start: 130, End: 150})
	r.Record(Sample{Start: 120, End: 160})
	r.Record(Sample{Start: 345, End: 350})
	ts := r.TimeSeries(100)
	if len(ts) != 3 {
		t.Fatalf("series %v", ts)
	}
	if ts[0][1] != 10 || ts[1][1] != 30 || ts[2][1] != 5 {
		t.Fatalf("series values %v", ts)
	}
	// centers ascend
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i][0] < ts[j][0] }) {
		t.Fatal("series not time ordered")
	}
	if r.TimeSeries(0) != nil {
		t.Fatal("zero bin width")
	}
}

func TestThroughput(t *testing.T) {
	// 1000 flits, 10 terminals, 1000-tick window, 1-tick period => 0.1
	if got := Throughput(1000, 10, 1000, 1); got != 0.1 {
		t.Fatalf("throughput = %v", got)
	}
	// period 2: capacity halves, load doubles
	if got := Throughput(1000, 10, 1000, 2); got != 0.2 {
		t.Fatalf("throughput = %v", got)
	}
	if Throughput(5, 0, 10, 1) != 0 || Throughput(5, 1, 0, 1) != 0 {
		t.Fatal("degenerate throughput")
	}
}

func TestSampleLatency(t *testing.T) {
	s := Sample{Start: 100, End: 175}
	if s.Latency() != 75 {
		t.Fatalf("latency = %d", s.Latency())
	}
}

func TestChannelUtilization(t *testing.T) {
	// Two channels over a 1000-tick window: 500 flits at period 1 (50%),
	// 250 flits at period 2 (50% of a 500-flit capacity).
	mean, min, max := ChannelUtilization([]uint64{500, 100}, []sim.Tick{1, 2}, 1000)
	if min != 0.2 || max != 0.5 || mean != 0.35 {
		t.Fatalf("mean=%v min=%v max=%v", mean, min, max)
	}
	if m, _, _ := ChannelUtilization(nil, nil, 1000); m != 0 {
		t.Fatal("empty channels")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected mismatch panic")
		}
	}()
	ChannelUtilization([]uint64{1}, nil, 10)
}

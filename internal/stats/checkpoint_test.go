package stats

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"supersim/internal/snapshot"
)

func recorderWithSamples() *Recorder {
	r := NewRecorder()
	r.Record(Sample{Start: 10, End: 25, Flits: 4, Hops: 3, NonMinimal: true, App: 1, Src: 2, Dst: 7})
	r.Record(Sample{Start: 11, End: 11, Flits: 1, Hops: 1, App: 0, Src: 5, Dst: 0})
	r.Record(Sample{Start: 40, End: 90, Flits: 8, Hops: 5, App: 1, Src: 0, Dst: 3})
	return r
}

func TestRecorderStateRoundTrip(t *testing.T) {
	r := recorderWithSamples()
	_ = r.Percentile(50) // materialize the derived sorted view before saving

	e := snapshot.NewEncoder()
	r.SaveState(e)

	// Load over a recorder holding different samples and a stale sorted
	// view: both must be replaced.
	got := NewRecorder()
	got.Record(Sample{Start: 1, End: 2, Flits: 1, Hops: 1})
	_ = got.Mean()
	d := snapshot.NewDecoder(e.Bytes())
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	if !reflect.DeepEqual(got.Samples(), r.Samples()) {
		t.Fatalf("samples differ:\n got %+v\nwant %+v", got.Samples(), r.Samples())
	}
	if got.Percentile(99) != r.Percentile(99) || got.Mean() != r.Mean() {
		t.Fatal("derived statistics differ after restore")
	}

	e2 := snapshot.NewEncoder()
	got.SaveState(e2)
	if !bytes.Equal(e.Bytes(), e2.Bytes()) {
		t.Fatal("re-saved recorder state is not byte-identical")
	}
}

func TestRecorderStateRoundTripEmpty(t *testing.T) {
	e := snapshot.NewEncoder()
	NewRecorder().SaveState(e)
	got := recorderWithSamples()
	if err := got.LoadState(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Fatalf("restored empty recorder has %d samples", got.Count())
	}
}

func TestRecorderLoadRejectsInvertedSample(t *testing.T) {
	e := snapshot.NewEncoder()
	e.Int(1)
	e.U64(20) // Start
	e.U64(5)  // End before Start
	e.Int(1)
	e.Int(1)
	e.Bool(false)
	e.Int(0)
	e.Int(0)
	e.Int(0)
	err := NewRecorder().LoadState(snapshot.NewDecoder(e.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "ends") {
		t.Fatalf("err = %v, want inverted-sample error", err)
	}
}

func TestRecorderLoadRejectsTruncation(t *testing.T) {
	e := snapshot.NewEncoder()
	recorderWithSamples().SaveState(e)
	data := e.Bytes()
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if err := NewRecorder().LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

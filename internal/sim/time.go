// Package sim implements the discrete event simulation (DES) core of the
// simulator: the hierarchical tick+epsilon time representation, multi-frequency
// clocks, the global event queue, and the component abstraction that all
// simulation models derive from.
//
// A simulation is natively built of Components which create Events. An Event
// holds a time value indicating when it is to be executed and a reference to
// the Component that performs the execution. The Simulator's priority queue
// sorts events so the event with the earliest execution time is at the head;
// the executer sequentially pulls events and executes them. The simulation is
// over when the event queue runs empty.
package sim

import "fmt"

// Epsilon orders operations performed within one time tick. Epsilons do not
// represent real time; they only maintain order of operation within a tick.
type Epsilon = uint32

// Tick is the unit of real simulated time. The user decides the value of a
// tick (1 nanosecond, 457 picoseconds, one clock cycle, ...). All experiment
// code in this repository uses 1 tick = 1 picosecond unless noted.
type Tick = uint64

// Time is the hierarchical simulation time: a tick value plus an epsilon used
// to order same-tick operations. A lower tick is always higher priority
// regardless of epsilon; equal ticks compare epsilons.
type Time struct {
	Tick Tick
	Eps  Epsilon
}

// TimeZero is the origin of simulated time.
var TimeZero = Time{0, 0}

// Before reports whether t executes strictly earlier than u.
func (t Time) Before(u Time) bool {
	if t.Tick != u.Tick {
		return t.Tick < u.Tick
	}
	return t.Eps < u.Eps
}

// After reports whether t executes strictly later than u.
func (t Time) After(u Time) bool { return u.Before(t) }

// Compare returns -1, 0 or +1 as t is before, equal to, or after u.
func (t Time) Compare(u Time) int {
	switch {
	case t.Before(u):
		return -1
	case u.Before(t):
		return 1
	default:
		return 0
	}
}

// Plus returns the time dt ticks later, with epsilon reset to zero.
func (t Time) Plus(dt Tick) Time { return Time{t.Tick + dt, 0} }

// NextEps returns the same tick with the epsilon incremented. It panics on
// epsilon overflow, which invariably indicates an event scheduling loop.
func (t Time) NextEps() Time {
	if t.Eps == ^Epsilon(0) {
		panic(fmt.Sprintf("sim: epsilon overflow at tick %d", t.Tick))
	}
	return Time{t.Tick, t.Eps + 1}
}

// WithEps returns the same tick with the given epsilon.
func (t Time) WithEps(e Epsilon) Time { return Time{t.Tick, e} }

func (t Time) String() string { return fmt.Sprintf("%d.%d", t.Tick, t.Eps) }

package sim

import (
	"strings"
	"testing"
)

// pingNode is a two-shard ping-pong endpoint: each ProcessEvent logs its tick
// and posts the ball back through its RemotePort until the rally limit.
type pingNode struct {
	ComponentBase
	port  *RemotePort
	lat   Tick
	limit int
	log   []Tick
}

func (n *pingNode) ReceiveRemote(at Tick, ptr any, aux int) {
	n.Sim().Schedule(n, Time{Tick: at}, aux, nil)
}

func (n *pingNode) ProcessEvent(ev *Event) {
	n.log = append(n.log, ev.Time.Tick)
	if ev.Type < n.limit {
		n.port.Send(n.port.SrcNow().Tick+n.lat, nil, ev.Type+1)
	}
}

// buildPingPong wires two shards with a node on each, linked both ways with
// the given latency, and serves the first ball to node a at tick 1.
func buildPingPong(lat Tick, limit int) (*Engine, *pingNode, *pingNode) {
	host := NewSimulator(1)
	eng := NewEngine(host)
	s1 := eng.AddShard()
	a := &pingNode{ComponentBase: NewComponentBase(host, "a"), lat: lat, limit: limit}
	b := &pingNode{ComponentBase: NewComponentBase(host, "b"), lat: lat, limit: limit}
	eng.Adopt(b, s1)
	a.port = eng.Link(host, s1, lat, b)
	b.port = eng.Link(s1, host, lat, a)
	host.Schedule(a, Time{Tick: 1}, 0, nil)
	return eng, a, b
}

func TestEnginePingPong(t *testing.T) {
	const lat, limit = 3, 20
	eng, a, b := buildPingPong(lat, limit)
	events, end := eng.Run()
	if want := uint64(limit + 1); events != want {
		t.Fatalf("executed %d events, want %d", events, want)
	}
	if want := Tick(1 + lat*limit); end.Tick != want {
		t.Fatalf("end tick %d, want %d", end.Tick, want)
	}
	// The rally alternates: a at 1, 1+2lat, ...; b at 1+lat, 1+3lat, ...
	for i, tk := range a.log {
		if want := Tick(1 + 2*lat*Tick(i)); tk != want {
			t.Fatalf("a hop %d at tick %d, want %d", i, tk, want)
		}
	}
	for i, tk := range b.log {
		if want := Tick(1 + lat + 2*lat*Tick(i)); tk != want {
			t.Fatalf("b hop %d at tick %d, want %d", i, tk, want)
		}
	}
}

func TestEngineHostOnlyWorkTerminates(t *testing.T) {
	// A shard with no events of its own (and no cross traffic) must not keep
	// the engine alive: global quiescence is the termination condition.
	host := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(host, "rec")}
	for i := 0; i < 10; i++ {
		host.Schedule(r, Time{Tick: Tick(i + 1)}, i, nil)
	}
	eng := NewEngine(host)
	eng.AddShard()
	events, end := eng.Run()
	if events != 10 || end.Tick != 10 {
		t.Fatalf("events=%d end=%d, want 10/10", events, end.Tick)
	}
}

func TestEngineIgnoresTrailingDaemons(t *testing.T) {
	// A far-future daemon (watchdog-style observer) on a shard with incoming
	// cross-shard edges — as every shard of a real topology has — must not
	// stall termination, count as work, or execute past the last real work.
	const lat, limit = 3, 6
	eng, _, _ := buildPingPong(lat, limit)
	daemonRan := false
	eng.Host().ScheduleDaemon(HandlerFunc(func(ev *Event) { daemonRan = true }),
		Time{Tick: 1 << 40}, 0, nil)
	events, end := eng.Run()
	if want := uint64(limit + 1); events != want || end.Tick != Tick(1+lat*limit) {
		t.Fatalf("events=%d end=%d, want %d/%d", events, end.Tick, want, 1+lat*limit)
	}
	if daemonRan {
		t.Fatal("trailing daemon executed past the last real work")
	}
}

func TestEngineStopHalts(t *testing.T) {
	const lat = 2
	host := NewSimulator(1)
	eng := NewEngine(host)
	s1 := eng.AddShard()
	a := &pingNode{ComponentBase: NewComponentBase(host, "a"), lat: lat, limit: 1 << 30}
	b := &pingNode{ComponentBase: NewComponentBase(host, "b"), lat: lat, limit: 1 << 30}
	eng.Adopt(b, s1)
	a.port = eng.Link(host, s1, lat, b)
	b.port = eng.Link(s1, host, lat, a)
	stopper := HandlerFunc(func(ev *Event) { host.Stop() })
	host.Schedule(a, Time{Tick: 1}, 0, nil)
	host.Schedule(stopper, Time{Tick: 1 + 10*lat, Eps: 1}, 0, nil)
	eng.Run() // must return rather than rally forever
	if !host.Stopped() {
		t.Fatal("host not stopped")
	}
}

// panicNode panics when its event executes, from the shard goroutine.
type panicNode struct{ ComponentBase }

func (p *panicNode) ReceiveRemote(at Tick, ptr any, aux int) {
	p.Sim().Schedule(p, Time{Tick: at}, aux, nil)
}
func (p *panicNode) ProcessEvent(ev *Event) { panic("bomb detonated") }

func TestEnginePanicPropagates(t *testing.T) {
	host := NewSimulator(1)
	eng := NewEngine(host)
	s1 := eng.AddShard()
	bomb := &panicNode{ComponentBase: NewComponentBase(host, "bomb")}
	eng.Adopt(bomb, s1)
	port := eng.Link(host, s1, 1, bomb)
	host.Schedule(HandlerFunc(func(ev *Event) {
		port.Send(host.Now().Tick+1, nil, 0)
	}), Time{Tick: 1}, 0, nil)
	// The panic fires on shard 1's goroutine; the engine must stop every
	// worker and re-raise it on the calling goroutine.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic was not propagated")
		}
		if s, ok := r.(string); !ok || s != "bomb detonated" {
			t.Fatalf("propagated panic = %v, want the shard's panic value", r)
		}
	}()
	eng.Run()
}

func TestEngineLinkValidation(t *testing.T) {
	host := NewSimulator(1)
	eng := NewEngine(host)
	s1 := eng.AddShard()
	n := &pingNode{ComponentBase: NewComponentBase(host, "n")}
	mustPanic(t, func() { eng.Link(host, s1, 0, n) })   // zero lookahead
	mustPanic(t, func() { eng.Link(host, s1, 1, nil) }) // no receiver
	mustPanic(t, func() { eng.Link(host, host, 1, n) }) // same shard
	other := NewSimulator(2)
	mustPanic(t, func() { eng.Link(host, other, 1, n) }) // foreign simulator
	mustPanic(t, func() { NewEngine(host) })             // already attached
}

func TestEngineAdoptRequiresComponentBase(t *testing.T) {
	host := NewSimulator(1)
	eng := NewEngine(host)
	s1 := eng.AddShard()
	mustPanic(t, func() { eng.Adopt(HandlerFunc(func(ev *Event) {}), s1) })
	mustPanic(t, func() {
		n := &pingNode{ComponentBase: NewComponentBase(host, "n")}
		eng.Adopt(n, NewSimulator(3)) // not a shard of this engine
	})
}

// namedRec records which component executed, for cross-component order tests.
type namedRec struct {
	ComponentBase
	out *[]string
}

func (n *namedRec) ProcessEvent(ev *Event) { *n.out = append(*n.out, n.Name()) }

func TestSameTimeOrderByConstructionOrder(t *testing.T) {
	// Events at identical (tick, eps) from different components execute in
	// component construction order, not scheduling order — the property that
	// makes the merge order partition-independent (a shard cannot observe the
	// global scheduling interleaving, but construction order is fixed at
	// build time).
	s := NewSimulator(1)
	var got []string
	a := &namedRec{ComponentBase: NewComponentBase(s, "a"), out: &got}
	b := &namedRec{ComponentBase: NewComponentBase(s, "b"), out: &got}
	c := &namedRec{ComponentBase: NewComponentBase(s, "c"), out: &got}
	for _, h := range []Handler{c, a, b} { // schedule out of construction order
		s.Schedule(h, Time{Tick: 5}, 0, nil)
	}
	s.Run()
	if want := "a b c"; strings.Join(got, " ") != want {
		t.Fatalf("same-time order %v, want construction order %q", got, want)
	}
}

func TestDeriveRandPartitionIndependent(t *testing.T) {
	s1 := NewSimulator(9)
	s2 := NewSimulator(9)
	// Perturb s2's global stream: derived streams must not care.
	s2.Rand().Uint64()
	a1 := s1.DeriveRand("router7")
	a2 := s2.DeriveRand("router7")
	for i := 0; i < 32; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatalf("same seed+name diverged at draw %d", i)
		}
	}
	// Different names and different seeds give different streams.
	b := s1.DeriveRand("router8")
	c := NewSimulator(10).DeriveRand("router7")
	ref := NewSimulator(9).DeriveRand("router7")
	sameB, sameC := true, true
	for i := 0; i < 32; i++ {
		v := ref.Uint64()
		if b.Uint64() != v {
			sameB = false
		}
		if c.Uint64() != v {
			sameC = false
		}
	}
	if sameB {
		t.Fatal("different names produced identical streams")
	}
	if sameC {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRunUntilDoesNotMonitorFinish(t *testing.T) {
	// Pins the Run/RunUntil asymmetry documented on RunUntil: a horizon is a
	// pause, not the end of the run, so only Run (or an explicit
	// FinishMonitor) flushes the final monitor interval.
	s := NewSimulator(1)
	finishes := 0
	s.MonitorFinish = func(now Time, executed uint64) { finishes++ }
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 10; i++ {
		s.Schedule(r, Time{Tick: Tick(i + 1)}, i, nil)
	}
	s.RunUntil(5)
	s.RunUntil(100) // drains the queue — still not the declared end
	if finishes != 0 {
		t.Fatalf("RunUntil invoked MonitorFinish %d times, want 0", finishes)
	}
	s.FinishMonitor()
	if finishes != 1 {
		t.Fatalf("FinishMonitor invoked MonitorFinish %d times, want 1", finishes)
	}

	s2 := NewSimulator(1)
	finishes2 := 0
	s2.MonitorFinish = func(now Time, executed uint64) { finishes2++ }
	s2.Schedule(&recorder{ComponentBase: NewComponentBase(s2, "rec")}, Time{Tick: 1}, 0, nil)
	s2.Run()
	if finishes2 != 1 {
		t.Fatalf("Run invoked MonitorFinish %d times, want 1", finishes2)
	}
}

func TestEventFreeListCapped(t *testing.T) {
	// Recycling far more events than the cap must not grow the free list past
	// maxEventFreeList: burst peaks are returned to the GC.
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 3*maxEventFreeList; i++ {
		s.Schedule(r, Time{Tick: Tick(i + 1)}, i, nil)
	}
	s.Run()
	if len(s.free) > maxEventFreeList {
		t.Fatalf("free list grew to %d, cap is %d", len(s.free), maxEventFreeList)
	}
	if len(s.free) != maxEventFreeList {
		t.Fatalf("free list holds %d after a %d-event run, want full cap %d",
			len(s.free), 3*maxEventFreeList, maxEventFreeList)
	}
}

package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
)

// maxEventFreeList caps the event free list. Recycled events beyond the cap
// are dropped for the GC to collect, so a burst peak (e.g. a transient pulse
// application) no longer pins its high-water mark of event memory for the
// rest of a long run. The cap comfortably exceeds the steady-state pending
// count of the paper-scale configurations, so the hot path still never
// allocates once warmed.
const maxEventFreeList = 4096

// Simulator is the global simulation object: it owns the event priority
// queue, the current time, and the simulation-wide pseudo random number
// generator. Each component links to the Simulator and pushes its new events
// into the queue; the executer sequentially pulls events and executes them
// until the queue runs empty.
//
// A Simulator is single-threaded and deterministic: the same configuration
// and seed always produce the same event order and the same results. For
// parallel execution, several Simulators (one per shard) are coordinated by
// an Engine (see parallel.go); each remains single-threaded internally.
type Simulator struct {
	queue eventHeap
	//sslint:nosnapshot — restored by the container: SetNow re-seeds the clock from the checkpoint tick
	now Time
	//sslint:nosnapshot — true only inside Run; snapshots are taken quiesced
	running bool
	//sslint:nosnapshot — Stop latch for the current Run call, reset when Run enters
	stopped bool
	//sslint:nosnapshot — partition-dependent split; the container stores run-wide totals and restores them via SetProgress
	executed uint64
	//sslint:nosnapshot — restored with executed via SetProgress (run-wide totals)
	lastWork Time // time of the most recent non-daemon event executed
	seqGen   uint64
	orderGen uint32
	//sslint:nosnapshot — recomputed by InjectEvent as the restored queue is re-injected
	daemons int // queued events scheduled with ScheduleDaemon
	//sslint:nosnapshot — event recycling cache; holds no observable state
	free []*Event
	rng  *rand.Rand
	pcg  *rand.PCG // rng's source, retained so checkpoints can serialize it
	seed uint64

	// derived records every DeriveRand stream in derivation order, so
	// checkpoints can serialize and restore the streams' PCG states. The
	// registry is a slice, not a map: derivation order is deterministic
	// (construction is config-driven and single-threaded), and slice
	// iteration keeps snapshot bytes deterministic too.
	derived []derivedStream

	// shard is non-nil when this simulator is coordinated by a parallel
	// Engine; it carries the cross-shard inbox and horizon state.
	//sslint:nosnapshot — engine wiring, re-established when the rebuilt shards are linked
	shard *shardState

	// curOwner/curOseq are the ordering key of the event currently executing
	// in runUntil. Together with now they form the CurrentStamp — the event's
	// position in the partition-independent total order, which shard-local
	// observers use to tag recordings for a deterministic global merge.
	//sslint:nosnapshot — live only while an event executes; snapshots are taken between events
	curOwner uint32
	//sslint:nosnapshot — live only while an event executes; snapshots are taken between events
	curOseq uint64

	// Monitor, if non-nil, is invoked every MonitorInterval executed
	// (non-daemon) events.
	//sslint:nosnapshot — host-side progress hook, not simulation state
	Monitor func(now Time, executed uint64)
	//sslint:nosnapshot — host-side progress hook, not simulation state
	MonitorInterval uint64

	// MonitorFinish, if non-nil, is invoked once when Run returns (queue
	// drained or Stop called), so periodic reporters can flush their final
	// partial interval instead of losing it.
	//sslint:nosnapshot — host-side progress hook, not simulation state
	MonitorFinish func(now Time, executed uint64)

	// verifier and telemetry are opaque attachment slots for the
	// invariant-verification subsystem (internal/verify) and the metrics/
	// tracing subsystem (internal/telemetry). They live here so components
	// can discover the attachments through the simulator they are built
	// with; sim itself never inspects them, keeping this package
	// dependency-free.
	//sslint:nosnapshot — attachment wiring, re-attached during the rebuild
	verifier any
	//sslint:nosnapshot — attachment wiring, re-attached during the rebuild
	telemetry any
}

// derivedStream is one DeriveRand stream: its name and the PCG source whose
// state evolves as the holder draws.
type derivedStream struct {
	name string
	pcg  *rand.PCG
}

// NewSimulator creates a simulator with the given PRNG seed.
func NewSimulator(seed uint64) *Simulator {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Simulator{
		rng:  rand.New(pcg),
		pcg:  pcg,
		seed: seed,
	}
}

// Now returns the current simulation time. While an event executes, Now is
// that event's time.
func (s *Simulator) Now() Time { return s.now }

// Seed returns the PRNG seed the simulator was created with.
func (s *Simulator) Seed() uint64 { return s.seed }

// Rand returns the simulation-wide PRNG. Components must use this generator
// (or one derived from it) so simulations are reproducible. Components whose
// draws must also be independent of how other components interleave their
// draws — everything that draws during the run — should use DeriveRand
// instead.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// DeriveRand returns a fresh PRNG stream deterministically derived from the
// simulator's seed and the given name. Two simulators with the same seed
// derive identical streams for identical names, regardless of what other
// components exist or when they draw — this is what makes per-component
// randomness partition-independent: a router draws the same sequence whether
// it runs in the serial loop or on any shard of a parallel engine. Names must
// be unique per logical stream (include an instance index when several
// components share a type name).
func (s *Simulator) DeriveRand(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	sub := h.Sum64()
	pcg := rand.NewPCG(s.seed^sub, (s.seed+0x9e3779b97f4a7c15)^(sub*0xff51afd7ed558ccd|1))
	s.derived = append(s.derived, derivedStream{name: name, pcg: pcg})
	return rand.New(pcg)
}

// nextOrderKey hands out construction-order keys for component event
// ordering; see eventOrder in component.go. Key 0 is reserved for "not yet
// assigned".
func (s *Simulator) nextOrderKey() uint32 {
	s.orderGen++
	if s.orderGen == 0 {
		panic("sim: component construction-order key space exhausted")
	}
	return s.orderGen
}

// SetVerifier attaches an opaque verification object to the simulator. It is
// set once, before components are built (see internal/verify.Attach).
func (s *Simulator) SetVerifier(v any) { s.verifier = v }

// Verifier returns the attached verification object, or nil.
func (s *Simulator) Verifier() any { return s.verifier }

// SetTelemetry attaches an opaque telemetry object to the simulator. It is
// set once, before components are built (see internal/telemetry.Attach).
func (s *Simulator) SetTelemetry(t any) { s.telemetry = t }

// Telemetry returns the attached telemetry object, or nil.
func (s *Simulator) Telemetry() any { return s.telemetry }

// Stamp is the position of an executing event in the partition-independent
// total order: the event's time plus its (owner, oseq) tiebreak — the same key
// the event heap sorts by (see entryLess). Stamps taken on different shards
// are mutually comparable, and equal stamps cannot occur for distinct events,
// so observation records tagged with stamps can be merged across shards into
// exactly the serial emission order.
type Stamp struct {
	T     Time
	Owner uint32
	Oseq  uint64
}

// Less orders stamps by (tick, epsilon, owner, oseq).
func (a Stamp) Less(b Stamp) bool {
	if a.T.Tick != b.T.Tick {
		return a.T.Tick < b.T.Tick
	}
	if a.T.Eps != b.T.Eps {
		return a.T.Eps < b.T.Eps
	}
	if a.Owner != b.Owner {
		return a.Owner < b.Owner
	}
	return a.Oseq < b.Oseq
}

// CurrentStamp returns the stamp of the event currently executing on this
// simulator. It is only meaningful inside a ProcessEvent call.
func (s *Simulator) CurrentStamp() Stamp {
	return Stamp{T: s.now, Owner: s.curOwner, Oseq: s.curOseq}
}

// ShardID returns the index of the engine shard this simulator runs on, or 0
// when the simulator is serial (shard 0 is the host, so serial and host
// observations share lane 0).
func (s *Simulator) ShardID() int {
	if s.shard == nil {
		return 0
	}
	return s.shard.id
}

// Executed returns the number of non-daemon events executed so far. Daemon
// events (ScheduleDaemon) are pure observers; excluding them keeps the count
// identical between serial and parallel runs, where observer re-arming can
// legitimately differ.
func (s *Simulator) Executed() uint64 { return s.executed }

// LastWork returns the time of the most recent non-daemon event executed —
// the simulation's logical end time once the queue has drained, independent
// of any trailing daemon wake-ups.
func (s *Simulator) LastWork() Time { return s.lastWork }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return s.queue.len() }

// PendingNonDaemon returns the number of queued events that were not
// scheduled with ScheduleDaemon — the events that represent real simulation
// work. Periodic observers (watchdogs, telemetry snapshots) use it to decide
// whether to re-arm: re-arming while only daemon events remain would keep
// the simulation alive forever, and two daemons checking Pending would keep
// each other alive.
//
// Under a parallel engine the count covers this shard exactly and remote
// shards as of their last committed window — a slightly stale but safe
// over-approximation is impossible to avoid without a global barrier, and
// observers only use the value as a liveness hint.
func (s *Simulator) PendingNonDaemon() int {
	n := s.queue.len() - s.daemons
	if sh := s.shard; sh != nil {
		for _, o := range sh.eng.shards {
			if o != sh {
				//sslint:allow shardsafety — published pending counts are the engine's sanctioned cross-shard read seam
				n += int(o.pendingPub.Load())
			}
		}
	}
	return n
}

// Schedule enqueues an event for the handler at the given time with a type
// tag and context pointer. The time must not be in the past; scheduling at
// the current (tick, epsilon) is also rejected because execution order would
// be ambiguous with respect to the running event.
func (s *Simulator) Schedule(h Handler, t Time, typ int, ctx any) {
	s.schedule(h, t, typ, ctx, false)
}

// ScheduleDaemon enqueues an event that does not count as simulation work:
// it is excluded from PendingNonDaemon and from the Executed count.
// Observation-only periodic components (the verify watchdog, telemetry
// snapshots) schedule with this so their self-re-arming never extends the
// life of a drained simulation.
func (s *Simulator) ScheduleDaemon(h Handler, t Time, typ int, ctx any) {
	s.schedule(h, t, typ, ctx, true)
}

//sslint:hotpath
func (s *Simulator) schedule(h Handler, t Time, typ int, ctx any, daemon bool) {
	if h == nil {
		panic("sim: Schedule with nil handler")
	}
	if s.running && !s.now.Before(t) {
		panic(fmt.Sprintf("sim: event scheduled at %v not after now %v", t, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		//sslint:allow hotpath — cold miss path: the event free list absorbs steady-state traffic
		e = &Event{}
	}
	e.Time = t
	e.Handler = h
	e.Type = typ
	e.Context = ctx
	e.daemon = daemon
	if daemon {
		s.daemons++
	}
	if oh, ok := h.(ordered); ok {
		o := oh.order()
		if o.key == 0 {
			// Lazy key for handlers built outside a component (HandlerFunc):
			// assigned on first schedule, which is deterministic in a
			// single-threaded build/run.
			o.key = s.nextOrderKey()
		}
		o.seq++
		e.owner, e.oseq = o.key, o.seq
	} else {
		// Foreign Handler implementation: fall back to global schedule order,
		// sorted after all keyed components at the same time.
		s.seqGen++
		e.owner, e.oseq = ^uint32(0), s.seqGen
	}
	if sh := s.shard; sh != nil && !daemon {
		// Daemon observers are excluded from the engine's global work count:
		// a far-future watchdog must not keep every shard lock-stepping
		// lookahead windows toward a tick where no real work remains.
		//sslint:allow shardsafety — the engine's global work counter is its sanctioned shared-memory seam
		sh.eng.work.Add(1)
	}
	s.queue.push(e)
}

// Stop makes Run return after the currently executing event completes, even
// if events remain queued. It is used by error paths and by workload
// controllers that decide a simulation is complete.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Run executes events in time order until the queue runs empty or Stop is
// called. It returns the number of non-daemon events executed by this call.
func (s *Simulator) Run() uint64 {
	n := s.runUntil(^Tick(0), true)
	if s.MonitorFinish != nil {
		s.MonitorFinish(s.now, s.executed)
	}
	return n
}

// RunUntil executes events whose time is strictly before the given tick, then
// returns. The simulation can be resumed with further Run/RunUntil calls.
// Each event goes through exactly the same execution path as Run: the
// time-went-backwards check and the Monitor callback both apply, so a
// simulation stepped with RunUntil behaves identically to one driven by Run.
//
// Unlike Run, RunUntil does NOT invoke MonitorFinish: reaching the horizon
// tick is a pause, not the end of the simulation, and a stepped run would
// otherwise flush its "final" interval once per step. Callers that finish a
// simulation via RunUntil (the parallel engine, test drivers) must call
// FinishMonitor once when the whole run is over. This asymmetry is pinned by
// TestRunUntilDoesNotMonitorFinish.
func (s *Simulator) RunUntil(tick Tick) uint64 {
	return s.runUntil(tick, false)
}

// FinishMonitor invokes MonitorFinish, if set. Run calls it automatically;
// drivers that end a simulation through RunUntil call it exactly once at the
// true end of the run.
func (s *Simulator) FinishMonitor() {
	if s.MonitorFinish != nil {
		s.MonitorFinish(s.now, s.executed)
	}
}

//sslint:hotpath
func (s *Simulator) runUntil(tick Tick, all bool) uint64 {
	start := s.executed
	s.running = true
	for s.queue.len() > 0 && !s.stopped {
		if !all {
			if e := s.queue.peek(); e.Time.Tick >= tick {
				break
			}
		}
		e := s.queue.pop()
		if e.Time.Before(s.now) {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, e.Time))
		}
		daemon := e.daemon
		if daemon {
			s.daemons--
			e.daemon = false
		}
		s.now = e.Time
		s.curOwner, s.curOseq = e.owner, e.oseq
		h := e.Handler
		if !daemon {
			s.executed++
			s.lastWork = e.Time
		}
		h.ProcessEvent(e)
		e.Handler = nil
		e.Context = nil
		if len(s.free) < maxEventFreeList {
			//sslint:allow hotpath — growth is bounded by maxEventFreeList; steady state recycles without allocating
			s.free = append(s.free, e)
		}
		if sh := s.shard; sh != nil && !daemon {
			//sslint:allow shardsafety — the engine's global work counter is its sanctioned shared-memory seam
			sh.eng.work.Add(-1)
		}
		if !daemon && s.Monitor != nil && s.MonitorInterval > 0 && s.executed%s.MonitorInterval == 0 {
			s.Monitor(s.now, s.executed)
		}
	}
	s.running = false
	return s.executed - start
}

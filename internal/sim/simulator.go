package sim

import (
	"fmt"
	"math/rand/v2"
)

// Simulator is the global simulation object: it owns the event priority
// queue, the current time, and the simulation-wide pseudo random number
// generator. Each component links to the Simulator and pushes its new events
// into the queue; the executer sequentially pulls events and executes them
// until the queue runs empty.
//
// A Simulator is single-threaded and deterministic: the same configuration
// and seed always produce the same event order and the same results.
type Simulator struct {
	queue    eventHeap
	now      Time
	running  bool
	stopped  bool
	executed uint64
	seqGen   uint64
	daemons  int // queued events scheduled with ScheduleDaemon
	free     []*Event
	rng      *rand.Rand
	seed     uint64

	// Monitor, if non-nil, is invoked every MonitorInterval executed events.
	Monitor         func(now Time, executed uint64)
	MonitorInterval uint64

	// MonitorFinish, if non-nil, is invoked once when Run returns (queue
	// drained or Stop called), so periodic reporters can flush their final
	// partial interval instead of losing it.
	MonitorFinish func(now Time, executed uint64)

	// verifier and telemetry are opaque attachment slots for the
	// invariant-verification subsystem (internal/verify) and the metrics/
	// tracing subsystem (internal/telemetry). They live here so components
	// can discover the attachments through the simulator they are built
	// with; sim itself never inspects them, keeping this package
	// dependency-free.
	verifier  any
	telemetry any
}

// NewSimulator creates a simulator with the given PRNG seed.
func NewSimulator(seed uint64) *Simulator {
	return &Simulator{
		rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		seed: seed,
	}
}

// Now returns the current simulation time. While an event executes, Now is
// that event's time.
func (s *Simulator) Now() Time { return s.now }

// Seed returns the PRNG seed the simulator was created with.
func (s *Simulator) Seed() uint64 { return s.seed }

// Rand returns the simulation-wide PRNG. Components must use this generator
// (or one derived from it) so simulations are reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// SetVerifier attaches an opaque verification object to the simulator. It is
// set once, before components are built (see internal/verify.Attach).
func (s *Simulator) SetVerifier(v any) { s.verifier = v }

// Verifier returns the attached verification object, or nil.
func (s *Simulator) Verifier() any { return s.verifier }

// SetTelemetry attaches an opaque telemetry object to the simulator. It is
// set once, before components are built (see internal/telemetry.Attach).
func (s *Simulator) SetTelemetry(t any) { s.telemetry = t }

// Telemetry returns the attached telemetry object, or nil.
func (s *Simulator) Telemetry() any { return s.telemetry }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return s.queue.len() }

// PendingNonDaemon returns the number of queued events that were not
// scheduled with ScheduleDaemon — the events that represent real simulation
// work. Periodic observers (watchdogs, telemetry snapshots) use it to decide
// whether to re-arm: re-arming while only daemon events remain would keep
// the simulation alive forever, and two daemons checking Pending would keep
// each other alive.
func (s *Simulator) PendingNonDaemon() int { return s.queue.len() - s.daemons }

// Schedule enqueues an event for the handler at the given time with a type
// tag and context pointer. The time must not be in the past; scheduling at
// the current (tick, epsilon) is also rejected because execution order would
// be ambiguous with respect to the running event.
func (s *Simulator) Schedule(h Handler, t Time, typ int, ctx any) {
	s.schedule(h, t, typ, ctx, false)
}

// ScheduleDaemon enqueues an event that does not count as simulation work:
// it is excluded from PendingNonDaemon. Observation-only periodic components
// (the verify watchdog, telemetry snapshots) schedule with this so their
// self-re-arming never extends the life of a drained simulation.
func (s *Simulator) ScheduleDaemon(h Handler, t Time, typ int, ctx any) {
	s.schedule(h, t, typ, ctx, true)
}

//sslint:hotpath
func (s *Simulator) schedule(h Handler, t Time, typ int, ctx any, daemon bool) {
	if h == nil {
		panic("sim: Schedule with nil handler")
	}
	if s.running && !s.now.Before(t) {
		panic(fmt.Sprintf("sim: event scheduled at %v not after now %v", t, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		//sslint:allow hotpath — cold miss path: the event free list absorbs steady-state traffic
		e = &Event{}
	}
	e.Time = t
	e.Handler = h
	e.Type = typ
	e.Context = ctx
	e.daemon = daemon
	if daemon {
		s.daemons++
	}
	s.seqGen++
	e.seq = s.seqGen // FIFO tiebreak among identical times
	s.queue.push(e)
}

// Stop makes Run return after the currently executing event completes, even
// if events remain queued. It is used by error paths and by workload
// controllers that decide a simulation is complete.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Run executes events in time order until the queue runs empty or Stop is
// called. It returns the number of events executed by this call.
func (s *Simulator) Run() uint64 {
	start := s.executed
	s.running = true
	for s.queue.len() > 0 && !s.stopped {
		e := s.queue.pop()
		if e.Time.Before(s.now) {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, e.Time))
		}
		if e.daemon {
			s.daemons--
			e.daemon = false
		}
		s.now = e.Time
		h := e.Handler
		s.executed++
		h.ProcessEvent(e)
		e.Handler = nil
		e.Context = nil
		s.free = append(s.free, e)
		if s.Monitor != nil && s.MonitorInterval > 0 && s.executed%s.MonitorInterval == 0 {
			s.Monitor(s.now, s.executed)
		}
	}
	s.running = false
	if s.MonitorFinish != nil {
		s.MonitorFinish(s.now, s.executed)
	}
	return s.executed - start
}

// RunUntil executes events whose time is strictly before the given tick, then
// returns. The simulation can be resumed with further Run/RunUntil calls.
// Each event goes through exactly the same execution path as Run: the
// time-went-backwards check and the Monitor callback both apply, so a
// simulation stepped with RunUntil behaves identically to one driven by Run.
func (s *Simulator) RunUntil(tick Tick) uint64 {
	start := s.executed
	s.running = true
	for s.queue.len() > 0 && !s.stopped {
		e := s.queue.peek()
		if e.Time.Tick >= tick {
			break
		}
		e = s.queue.pop()
		if e.Time.Before(s.now) {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, e.Time))
		}
		if e.daemon {
			s.daemons--
			e.daemon = false
		}
		s.now = e.Time
		h := e.Handler
		s.executed++
		h.ProcessEvent(e)
		e.Handler = nil
		e.Context = nil
		s.free = append(s.free, e)
		if s.Monitor != nil && s.MonitorInterval > 0 && s.executed%s.MonitorInterval == 0 {
			s.Monitor(s.now, s.executed)
		}
	}
	s.running = false
	return s.executed - start
}

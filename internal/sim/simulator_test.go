package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// recorder is a test component that records the order of executed events.
type recorder struct {
	ComponentBase
	order []int
	times []Time
}

func (r *recorder) ProcessEvent(ev *Event) {
	r.order = append(r.order, ev.Type)
	r.times = append(r.times, ev.Time)
}

func TestSimulatorExecutesInTimeOrder(t *testing.T) {
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	// Schedule out of order, including epsilon ordering within a tick.
	s.Schedule(r, Time{10, 0}, 3, nil)
	s.Schedule(r, Time{5, 2}, 2, nil)
	s.Schedule(r, Time{5, 1}, 1, nil)
	s.Schedule(r, Time{1, 0}, 0, nil)
	s.Schedule(r, Time{10, 1}, 4, nil)
	n := s.Run()
	if n != 5 {
		t.Fatalf("Run executed %d events, want 5", n)
	}
	for i, typ := range r.order {
		if typ != i {
			t.Fatalf("execution order %v, want ascending types", r.order)
		}
	}
	if s.Now() != (Time{10, 1}) {
		t.Fatalf("Now = %v after run, want 10.1", s.Now())
	}
}

func TestSimulatorFIFOTiebreak(t *testing.T) {
	// Events at identical (tick, eps) must execute in scheduling order.
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 50; i++ {
		s.Schedule(r, Time{7, 3}, i, nil)
	}
	s.Run()
	for i, typ := range r.order {
		if typ != i {
			t.Fatalf("FIFO violated at %d: order=%v", i, r.order[:i+1])
		}
	}
}

// chainer schedules a follow-up event from within ProcessEvent.
type chainer struct {
	ComponentBase
	remaining int
	executed  int
}

func (c *chainer) ProcessEvent(ev *Event) {
	c.executed++
	if c.remaining > 0 {
		c.remaining--
		c.Sim().Schedule(c, c.Sim().Now().Plus(1), 0, nil)
	}
}

func TestSimulatorEventChaining(t *testing.T) {
	s := NewSimulator(1)
	c := &chainer{ComponentBase: NewComponentBase(s, "chain"), remaining: 99}
	s.Schedule(c, Time{1, 0}, 0, nil)
	s.Run()
	if c.executed != 100 {
		t.Fatalf("executed %d, want 100", c.executed)
	}
	if s.Now().Tick != 100 {
		t.Fatalf("final tick %d, want 100", s.Now().Tick)
	}
}

func TestSimulatorEpsilonChainingSameTick(t *testing.T) {
	s := NewSimulator(1)
	var eps []Epsilon
	var h Handler
	h = HandlerFunc(func(ev *Event) {
		eps = append(eps, s.Now().Eps)
		if len(eps) < 4 {
			s.Schedule(h, s.Now().NextEps(), 0, nil)
		}
	})
	s.Schedule(h, Time{3, 0}, 0, nil)
	s.Run()
	want := []Epsilon{0, 1, 2, 3}
	for i := range want {
		if eps[i] != want[i] {
			t.Fatalf("epsilons %v, want %v", eps, want)
		}
	}
	if s.Now().Tick != 3 {
		t.Fatalf("tick advanced to %d during epsilon chaining", s.Now().Tick)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewSimulator(1)
	h := HandlerFunc(func(ev *Event) {
		// At time 5.0; scheduling at 5.0 or earlier must panic.
		mustPanic(t, func() { s.Schedule(ev.Handler, Time{5, 0}, 0, nil) })
		mustPanic(t, func() { s.Schedule(ev.Handler, Time{4, 9}, 0, nil) })
	})
	s.Schedule(h, Time{5, 0}, 0, nil)
	s.Run()
}

func TestScheduleNilHandlerPanics(t *testing.T) {
	s := NewSimulator(1)
	mustPanic(t, func() { s.Schedule(nil, Time{1, 0}, 0, nil) })
}

func TestSimulatorStop(t *testing.T) {
	s := NewSimulator(1)
	count := 0
	var h Handler
	h = HandlerFunc(func(ev *Event) {
		count++
		if count == 10 {
			s.Stop()
		}
		s.Schedule(h, s.Now().Plus(1), 0, nil)
	})
	s.Schedule(h, Time{1, 0}, 0, nil)
	s.Run()
	if count != 10 {
		t.Fatalf("executed %d events after Stop, want 10", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 10; i++ {
		s.Schedule(r, Time{Tick(i * 10), 0}, i, nil)
	}
	s.RunUntil(50)
	if len(r.order) != 5 {
		t.Fatalf("RunUntil(50) executed %d events, want 5 (ticks 0..40)", len(r.order))
	}
	s.Run()
	if len(r.order) != 10 {
		t.Fatalf("resume executed %d total, want 10", len(r.order))
	}
}

func TestSimulatorContextAndType(t *testing.T) {
	s := NewSimulator(1)
	type payload struct{ x int }
	got := 0
	h := HandlerFunc(func(ev *Event) {
		if ev.Type != 42 {
			t.Errorf("Type = %d", ev.Type)
		}
		got = ev.Context.(*payload).x
	})
	s.Schedule(h, Time{1, 0}, 42, &payload{x: 7})
	s.Run()
	if got != 7 {
		t.Fatalf("context payload = %d, want 7", got)
	}
}

func TestSimulatorEventRecycling(t *testing.T) {
	// Run two waves; the second wave reuses freed events. Correctness is that
	// contexts and types do not leak between waves.
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 100; i++ {
		s.Schedule(r, Time{Tick(i + 1), 0}, i, nil)
	}
	s.Run()
	r.order = nil
	for i := 0; i < 100; i++ {
		s.Schedule(r, Time{Tick(1000 + i), 0}, 1000+i, nil)
	}
	s.Run()
	for i, typ := range r.order {
		if typ != 1000+i {
			t.Fatalf("recycled event carried stale type: %v", r.order[i])
		}
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func(seed uint64) []uint64 {
		s := NewSimulator(seed)
		var seq []uint64
		var h Handler
		n := 0
		h = HandlerFunc(func(ev *Event) {
			v := s.Rand().Uint64()
			seq = append(seq, v)
			n++
			if n < 100 {
				s.Schedule(h, s.Now().Plus(1+v%5), 0, nil)
			}
		})
		s.Schedule(h, Time{1, 0}, 0, nil)
		s.Run()
		return seq
	}
	a, b := run(12345), run(12345)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := run(54321)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestSimulatorMonitor(t *testing.T) {
	s := NewSimulator(1)
	var calls []uint64
	s.MonitorInterval = 10
	s.Monitor = func(now Time, executed uint64) { calls = append(calls, executed) }
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 35; i++ {
		s.Schedule(r, Time{Tick(i + 1), 0}, i, nil)
	}
	s.Run()
	if len(calls) != 3 || calls[0] != 10 || calls[2] != 30 {
		t.Fatalf("monitor calls %v, want [10 20 30]", calls)
	}
}

// Property: for any multiset of scheduled times, execution happens in
// nondecreasing (tick, eps) order.
func TestSimulatorHeapOrderProperty(t *testing.T) {
	prop := func(ticks []uint16, eps []uint8) bool {
		if len(ticks) == 0 {
			return true
		}
		s := NewSimulator(7)
		r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
		for i, tk := range ticks {
			e := Epsilon(0)
			if len(eps) > 0 {
				e = Epsilon(eps[i%len(eps)])
			}
			s.Schedule(r, Time{Tick(tk) + 1, e}, i, nil)
		}
		s.Run()
		if !sort.SliceIsSorted(r.times, func(i, j int) bool { return r.times[i].Before(r.times[j]) }) {
			// equal times allowed; check non-decreasing
			for i := 1; i < len(r.times); i++ {
				if r.times[i].Before(r.times[i-1]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestHandlerFunc(t *testing.T) {
	s := NewSimulator(1)
	fired := false
	s.Schedule(HandlerFunc(func(ev *Event) { fired = true }), Time{1, 0}, 0, nil)
	s.Run()
	if !fired {
		t.Fatal("HandlerFunc not invoked")
	}
}

func TestComponentBasePanicHelpers(t *testing.T) {
	s := NewSimulator(1)
	c := NewComponentBase(s, "unit")
	mustPanic(t, func() { c.Panicf("boom %d", 3) })
	mustPanic(t, func() { c.Assert(false, "bad") })
	c.Assert(true, "fine") // must not panic
	if c.Name() != "unit" || c.Sim() != s {
		t.Fatal("accessors wrong")
	}
}

func TestNewComponentBaseNilSimPanics(t *testing.T) {
	mustPanic(t, func() { NewComponentBase(nil, "x") })
}

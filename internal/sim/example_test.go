package sim_test

import (
	"fmt"

	"supersim/internal/sim"
)

// A minimal discrete event simulation: one handler reschedules itself three
// times, one tick apart, then lets the queue run empty.
func Example() {
	s := sim.NewSimulator(1)
	var h sim.Handler
	count := 0
	h = sim.HandlerFunc(func(ev *sim.Event) {
		count++
		fmt.Printf("event %d at %v\n", count, s.Now())
		if count < 3 {
			s.Schedule(h, s.Now().Plus(1), 0, nil)
		}
	})
	s.Schedule(h, sim.Time{Tick: 10}, 0, nil)
	s.Run()
	// Output:
	// event 1 at 10.0
	// event 2 at 11.0
	// event 3 at 12.0
}

// Clocks convert between ticks and cycles; a 2x core clock over a 1 GHz link
// (1 tick = 0.5 ns) has a period of 1 tick vs the link's 2.
func ExampleClock() {
	link := sim.NewClock(2, 0)
	core := sim.NewClock(1, 0)
	fmt.Println(link.NextEdge(3), core.NextEdge(3))
	fmt.Println(link.Cycle(10), core.Cycle(10))
	// Output:
	// 4 3
	// 5 10
}

package sim

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"supersim/internal/snapshot"
)

func TestEventRecordRoundTrip(t *testing.T) {
	recs := []EventRecord{
		{Tick: 10, Eps: 2, Owner: 3, Oseq: 7, Type: 4, Daemon: true},
		{Tick: 11, Owner: 1, Oseq: 8, Type: -2, HasCtx: true, Ctx: 9},
	}
	e := snapshot.NewEncoder()
	for i := range recs {
		recs[i].Save(e)
	}
	data := e.Bytes()

	d := snapshot.NewDecoder(data)
	got := make([]EventRecord, len(recs))
	for i := range got {
		if err := got[i].Load(d); err != nil {
			t.Fatal(err)
		}
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	one := snapshot.NewEncoder()
	recs[1].Save(one)
	single := one.Bytes()
	for _, n := range []int{0, 1, len(single) - 1} {
		var r EventRecord
		if err := r.Load(snapshot.NewDecoder(single[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

// ckpRecorder is a keyed recording component. Unlike the recorder type in
// simulator_test.go — whose order field shadows the promoted order() method,
// making it a foreign (unkeyed) handler — this one carries a construction-
// order key, like every production component.
type ckpRecorder struct {
	ComponentBase
	typesRun []int
	times    []Time
}

func (r *ckpRecorder) ProcessEvent(ev *Event) {
	r.typesRun = append(r.typesRun, ev.Type)
	r.times = append(r.times, ev.Time)
}

func TestExportInjectQueueRoundTrip(t *testing.T) {
	// Schedule a mix of plain, context-carrying, and daemon events, export
	// the queue, inject it into an identically built simulator, and require
	// the continuation to execute identically.
	build := func() (*Simulator, *ckpRecorder) {
		s := NewSimulator(3)
		return s, &ckpRecorder{ComponentBase: NewComponentBase(s, "rec")}
	}
	s, r := build()
	s.Schedule(r, Time{10, 0}, 2, nil)
	s.Schedule(r, Time{5, 1}, 1, 77)
	s.ScheduleDaemon(r, Time{20, 0}, 3, nil)
	recs, err := s.ExportEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("exported %d records, want 3", len(recs))
	}
	SortEventRecords(recs)
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if b.Tick < a.Tick || (b.Tick == a.Tick && b.Eps < a.Eps) {
			t.Fatalf("records not sorted: %+v", recs)
		}
	}

	s2, r2 := build()
	s2.Schedule(r2, Time{1, 0}, 99, nil) // stale build-time event, dropped below
	s2.ResetQueue()
	if s2.Pending() != 0 || s2.PendingNonDaemon() != 0 {
		t.Fatalf("pending %d/%d after ResetQueue", s2.Pending(), s2.PendingNonDaemon())
	}
	for _, rec := range recs {
		s2.InjectEvent(r2, rec)
	}
	if s2.Pending() != 3 || s2.PendingNonDaemon() != 2 {
		t.Fatalf("pending %d/%d after inject, want 3/2", s2.Pending(), s2.PendingNonDaemon())
	}
	s2.SetNow(Time{Tick: 5})
	s2.SetProgress(100, Time{Tick: 4})
	if s2.Executed() != 100 || s2.LastWork() != (Time{Tick: 4}) {
		t.Fatalf("progress %d/%v after SetProgress", s2.Executed(), s2.LastWork())
	}

	s.Run()
	s2.Run()
	if len(r2.typesRun) != len(r.typesRun) {
		t.Fatalf("restored run executed %d events, want %d", len(r2.typesRun), len(r.typesRun))
	}
	for i := range r.typesRun {
		if r2.typesRun[i] != r.typesRun[i] || r2.times[i] != r.times[i] {
			t.Fatalf("restored execution diverged at %d: %v@%v vs %v@%v",
				i, r2.typesRun[i], r2.times[i], r.typesRun[i], r.times[i])
		}
	}
	if s2.Executed() != 100+s.Executed() {
		t.Fatalf("executed %d, want %d", s2.Executed(), 100+s.Executed())
	}
}

func TestExportEventsRejectsUnserializable(t *testing.T) {
	s := NewSimulator(1)
	r := &ckpRecorder{ComponentBase: NewComponentBase(s, "rec")}
	s.Schedule(r, Time{1, 0}, 0, "not an int")
	if _, err := s.ExportEvents(); err == nil ||
		!strings.Contains(err.Error(), "context") {
		t.Fatalf("string context: err = %v", err)
	}

	// The simulator_test recorder is a foreign handler (its order field
	// shadows the promoted order() method), so its events carry no
	// construction-order key and cannot be snapshotted.
	s2 := NewSimulator(1)
	s2.Schedule(&recorder{ComponentBase: NewComponentBase(s2, "rec")}, Time{1, 0}, 0, nil)
	if _, err := s2.ExportEvents(); err == nil ||
		!strings.Contains(err.Error(), "construction-order key") {
		t.Fatalf("foreign handler: err = %v", err)
	}
}

func TestInjectEventPanics(t *testing.T) {
	s := NewSimulator(1)
	mustPanic(t, func() { s.InjectEvent(nil, EventRecord{}) })
}

func TestSimulatorStateRoundTrip(t *testing.T) {
	build := func() (*Simulator, *rand.Rand, *rand.Rand) {
		s := NewSimulator(11)
		NewComponentBase(s, "a")
		return s, s.DeriveRand("stream_a"), s.DeriveRand("stream_b")
	}
	s, sa, sb := build()
	// Advance every PRNG stream and the scheduling counters past their
	// initial state.
	s.Rand().Uint64()
	sa.Uint64()
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	s.Schedule(r, Time{1, 0}, 0, nil)
	e := snapshot.NewEncoder()
	s.SaveState(e)
	data := e.Bytes()

	got, ga, gb := build()
	d := snapshot.NewDecoder(data)
	if err := got.LoadState(d); err != nil {
		t.Fatal(err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after load", d.Remaining())
	}
	// Every stream must continue from the saved point, not the seed.
	if got.Rand().Uint64() != s.Rand().Uint64() ||
		ga.Uint64() != sa.Uint64() || gb.Uint64() != sb.Uint64() {
		t.Fatal("restored PRNG streams diverge from the originals")
	}
	if got.Seed() != 11 {
		t.Fatalf("Seed = %d", got.Seed())
	}
}

func TestSimulatorLoadRejectsMismatchedBuild(t *testing.T) {
	s := NewSimulator(1)
	s.DeriveRand("stream_a")
	e := snapshot.NewEncoder()
	s.SaveState(e)
	data := e.Bytes()

	if err := NewSimulator(1).LoadState(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), "derived PRNG streams") {
		t.Fatalf("stream count: err = %v", err)
	}
	other := NewSimulator(1)
	other.DeriveRand("stream_z")
	if err := other.LoadState(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), `"stream_a"`) {
		t.Fatalf("stream name: err = %v", err)
	}
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		fresh := NewSimulator(1)
		fresh.DeriveRand("stream_a")
		if err := fresh.LoadState(snapshot.NewDecoder(data[:n])); err == nil {
			t.Fatalf("truncation to %d bytes loaded without error", n)
		}
	}
}

func TestComponentOrderRoundTrip(t *testing.T) {
	s := NewSimulator(1)
	ra := &ckpRecorder{ComponentBase: NewComponentBase(s, "a")}
	b := NewComponentBase(s, "b")
	if ra.OrderKey() == b.OrderKey() {
		t.Fatal("distinct components share an order key")
	}
	s.Schedule(ra, Time{1, 0}, 0, nil) // bumps the per-handler seq counter
	a := &ra.ComponentBase
	e := snapshot.NewEncoder()
	a.SaveOrder(e)
	data := e.Bytes()

	s2 := NewSimulator(1)
	a2 := NewComponentBase(s2, "a")
	if err := a2.LoadOrder(snapshot.NewDecoder(data)); err != nil {
		t.Fatal(err)
	}
	if a2.ord.seq != a.ord.seq {
		t.Fatalf("restored seq %d, want %d", a2.ord.seq, a.ord.seq)
	}
	e2 := snapshot.NewEncoder()
	a2.SaveOrder(e2)
	if !bytes.Equal(e2.Bytes(), data) {
		t.Fatal("re-saved order state is not byte-identical")
	}

	s3 := NewSimulator(1)
	NewComponentBase(s3, "pad") // shifts the next key
	w := NewComponentBase(s3, "a")
	if err := w.LoadOrder(snapshot.NewDecoder(data)); err == nil ||
		!strings.Contains(err.Error(), "construction-order key") {
		t.Fatalf("key mismatch: err = %v", err)
	}
	tc := NewComponentBase(NewSimulator(1), "a")
	if err := tc.LoadOrder(snapshot.NewDecoder(data[:1])); err == nil {
		t.Fatal("truncated order state loaded without error")
	}
}

func TestEngineCheckpointAccessors(t *testing.T) {
	host := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(host, "rec")}
	host.Schedule(r, Time{5, 0}, 0, nil)
	eng := NewEngine(host)
	eng.AddShard()
	if eng.NumShards() != 2 {
		t.Fatalf("NumShards = %d", eng.NumShards())
	}
	eng.RunUntil(10)
	eng.DrainCross()
	if !eng.Quiesced() {
		t.Fatal("engine not quiescent after draining a finished run")
	}
	if eng.Stopped() {
		t.Fatal("Stopped with no Stop call")
	}
	eng.SeedCommit(10)
	n, _ := eng.Finish()
	if n != 1 || len(r.order) != 1 {
		t.Fatalf("executed %d events (%d recorded), want 1", n, len(r.order))
	}
}

func TestClockAccessors(t *testing.T) {
	c := NewClock(4, 1)
	if c.Period() != 4 || c.Phase() != 1 {
		t.Fatalf("period %d phase %d", c.Period(), c.Phase())
	}
	if c.Cycle(0) != 0 || c.Cycle(9) != 2 {
		t.Fatalf("cycles %d, %d", c.Cycle(0), c.Cycle(9))
	}
}

func TestObserverAttachments(t *testing.T) {
	s := NewSimulator(1)
	v, tl := struct{ x int }{1}, struct{ y int }{2}
	s.SetVerifier(v)
	s.SetTelemetry(tl)
	if s.Verifier() != v || s.Telemetry() != tl {
		t.Fatal("observer accessors do not return the attached values")
	}
}

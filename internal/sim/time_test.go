package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeBefore(t *testing.T) {
	cases := []struct {
		a, b   Time
		before bool
	}{
		{Time{0, 0}, Time{0, 0}, false},
		{Time{0, 0}, Time{0, 1}, true},
		{Time{0, 1}, Time{0, 0}, false},
		{Time{0, 5}, Time{1, 0}, true}, // lower tick always wins over epsilon
		{Time{1, 0}, Time{0, 5}, false},
		{Time{3, 2}, Time{3, 2}, false},
		{Time{3, 2}, Time{3, 3}, true},
	}
	for _, c := range cases {
		if got := c.a.Before(c.b); got != c.before {
			t.Errorf("(%v).Before(%v) = %v, want %v", c.a, c.b, got, c.before)
		}
	}
}

func TestTimeAfterAndCompare(t *testing.T) {
	a, b := Time{1, 2}, Time{1, 3}
	if !b.After(a) || a.After(b) {
		t.Fatal("After inconsistent")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare inconsistent")
	}
}

func TestTimePlusResetsEpsilon(t *testing.T) {
	got := Time{5, 7}.Plus(3)
	if got != (Time{8, 0}) {
		t.Fatalf("Plus = %v, want 8.0", got)
	}
}

func TestTimeNextEps(t *testing.T) {
	got := Time{5, 7}.NextEps()
	if got != (Time{5, 8}) {
		t.Fatalf("NextEps = %v, want 5.8", got)
	}
}

func TestTimeNextEpsOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on epsilon overflow")
		}
	}()
	Time{1, ^Epsilon(0)}.NextEps()
}

func TestTimeWithEps(t *testing.T) {
	if got := (Time{9, 1}).WithEps(4); got != (Time{9, 4}) {
		t.Fatalf("WithEps = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	if s := (Time{12, 3}).String(); s != "12.3" {
		t.Fatalf("String = %q", s)
	}
}

// Property: Before is a strict total order consistent with Compare.
func TestTimeOrderProperties(t *testing.T) {
	total := func(at, bt uint64, ae, be uint32) bool {
		a, b := Time{at, ae}, Time{bt, be}
		// exactly one of: a<b, b<a, a==b
		n := 0
		if a.Before(b) {
			n++
		}
		if b.Before(a) {
			n++
		}
		if a == b {
			n++
		}
		return n == 1
	}
	if err := quick.Check(total, nil); err != nil {
		t.Error(err)
	}
	antisym := func(at, bt uint64, ae, be uint32) bool {
		a, b := Time{at, ae}, Time{bt, be}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}

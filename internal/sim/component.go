package sim

import "fmt"

// Component is the base abstraction for every simulation model: routers,
// interfaces, channels, terminals, workload controllers, and so on. Each
// component has a hierarchical name and links to the global Simulator.
type Component interface {
	Handler
	// Name returns the component's hierarchical name, e.g.
	// "network.router_3_1.input_2".
	Name() string
	// Sim returns the simulator this component belongs to.
	Sim() *Simulator
}

// eventOrder is a handler's deterministic scheduling identity. key is the
// handler's construction-order number (assigned by the simulator the handler
// was built against, never reassigned); seq counts that handler's Schedule
// calls. Together they form the (owner, oseq) tiebreak in the event heap —
// see event.go. key 0 means "not yet assigned"; the simulator assigns lazily
// on first schedule for handlers (HandlerFunc) created outside a component.
type eventOrder struct {
	key uint32
	seq uint64
}

// ordered is implemented by handlers that carry an eventOrder. ComponentBase
// and funcHandler provide it; the simulator falls back to a global schedule
// sequence for any foreign Handler implementation without one.
type ordered interface {
	order() *eventOrder
}

// rebindable is the sealed hook the parallel engine uses to move a component
// onto a shard's simulator (see Engine.Adopt). Only types embedding
// ComponentBase can satisfy it — the method is unexported, so the set of
// adoptable components is closed over this package's base type.
type rebindable interface {
	rebind(s *Simulator)
}

// ComponentBase provides the common Component plumbing. Concrete models embed
// it and implement ProcessEvent.
type ComponentBase struct {
	name string
	//sslint:nosnapshot — simulator wiring, rebound by Engine.Adopt when shards are assigned
	sim *Simulator
	ord eventOrder
}

// NewComponentBase initializes the embedded base with a simulator and name.
// The base captures a construction-order key from the simulator; it is part
// of the deterministic event ordering, so components must be constructed in a
// deterministic order (they are: construction is driven by configuration,
// single-threaded, before Run).
func NewComponentBase(s *Simulator, name string) ComponentBase {
	if s == nil {
		panic("sim: component created with nil simulator")
	}
	return ComponentBase{name: name, sim: s, ord: eventOrder{key: s.nextOrderKey()}}
}

// Name returns the component's hierarchical name.
func (c *ComponentBase) Name() string { return c.name }

// Sim returns the simulator this component belongs to.
func (c *ComponentBase) Sim() *Simulator { return c.sim }

func (c *ComponentBase) order() *eventOrder { return &c.ord }

func (c *ComponentBase) rebind(s *Simulator) { c.sim = s }

// Panicf raises a simulation model error with the component name attached.
// It is used by the framework's error detection (buffer overruns, negative
// credits, misrouted flits, ...) to catch bugs in new component models early.
func (c *ComponentBase) Panicf(format string, args ...any) {
	panic(fmt.Sprintf("%s @%v: %s", c.name, c.sim.Now(), fmt.Sprintf(format, args...)))
}

// Assert panics with the formatted message when cond is false.
func (c *ComponentBase) Assert(cond bool, format string, args ...any) {
	if !cond {
		c.Panicf(format, args...)
	}
}

// funcHandler adapts a function to the Handler interface.
type funcHandler struct {
	fn  func(ev *Event)
	ord eventOrder // key assigned lazily on first schedule
}

func (f *funcHandler) ProcessEvent(ev *Event) { f.fn(ev) }

func (f *funcHandler) order() *eventOrder { return &f.ord }

// HandlerFunc wraps a function as an event Handler. It is mainly useful in
// tests and small models; persistent components should embed ComponentBase.
func HandlerFunc(fn func(ev *Event)) Handler { return &funcHandler{fn: fn} }

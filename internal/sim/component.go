package sim

import "fmt"

// Component is the base abstraction for every simulation model: routers,
// interfaces, channels, terminals, workload controllers, and so on. Each
// component has a hierarchical name and links to the global Simulator.
type Component interface {
	Handler
	// Name returns the component's hierarchical name, e.g.
	// "network.router_3_1.input_2".
	Name() string
	// Sim returns the simulator this component belongs to.
	Sim() *Simulator
}

// ComponentBase provides the common Component plumbing. Concrete models embed
// it and implement ProcessEvent.
type ComponentBase struct {
	name string
	sim  *Simulator
}

// NewComponentBase initializes the embedded base with a simulator and name.
func NewComponentBase(s *Simulator, name string) ComponentBase {
	if s == nil {
		panic("sim: component created with nil simulator")
	}
	return ComponentBase{name: name, sim: s}
}

// Name returns the component's hierarchical name.
func (c *ComponentBase) Name() string { return c.name }

// Sim returns the simulator this component belongs to.
func (c *ComponentBase) Sim() *Simulator { return c.sim }

// Panicf raises a simulation model error with the component name attached.
// It is used by the framework's error detection (buffer overruns, negative
// credits, misrouted flits, ...) to catch bugs in new component models early.
func (c *ComponentBase) Panicf(format string, args ...any) {
	panic(fmt.Sprintf("%s @%v: %s", c.name, c.sim.Now(), fmt.Sprintf(format, args...)))
}

// Assert panics with the formatted message when cond is false.
func (c *ComponentBase) Assert(cond bool, format string, args ...any) {
	if !cond {
		c.Panicf(format, args...)
	}
}

// funcHandler adapts a function to the Handler interface.
type funcHandler struct {
	fn func(ev *Event)
}

func (f *funcHandler) ProcessEvent(ev *Event) { f.fn(ev) }

// HandlerFunc wraps a function as an event Handler. It is mainly useful in
// tests and small models; persistent components should embed ComponentBase.
func HandlerFunc(fn func(ev *Event)) Handler { return &funcHandler{fn: fn} }

package sim

import (
	"strings"
	"testing"
)

// TestProgressMonitorReportsAndFlushes drives a run long enough for periodic
// reports plus a final partial interval and checks the emitted lines: periodic
// lines say "progress", the Run-completion flush says "finished", ETA appears
// only while EndTick is ahead of the current tick, and the gauges/line fields
// carry the executed-event and tick values.
func TestProgressMonitorReportsAndFlushes(t *testing.T) {
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 25; i++ {
		s.Schedule(r, Time{Tick: Tick(i + 1)}, i, nil)
	}
	var out strings.Builder
	pm := &ProgressMonitor{Out: &out, EndTick: 1_000_000}
	pm.Attach(s, 10)
	if n := s.Run(); n != 25 {
		t.Fatalf("executed %d events, want 25", n)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// 25 events at interval 10: reports at 10 and 20, final flush at 25.
	if len(lines) != 3 {
		t.Fatalf("got %d progress lines, want 3:\n%s", len(lines), out.String())
	}
	for i, want := range []string{"progress: tick=10 events=10 ", "progress: tick=20 events=20 ", "finished: tick=25 events=25 "} {
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], want)
		}
	}
	// EndTick is far ahead, so periodic lines carry an ETA; the final flush
	// never does (the run is over).
	for _, line := range lines[:2] {
		if !strings.Contains(line, " eta=") {
			t.Errorf("periodic line missing eta: %q", line)
		}
	}
	if strings.Contains(lines[2], " eta=") {
		t.Errorf("final line has eta: %q", lines[2])
	}
}

// TestProgressMonitorFinishSkipsDuplicate checks that when the run length is
// an exact multiple of the interval the completion flush stays silent instead
// of repeating the last periodic line.
func TestProgressMonitorFinishSkipsDuplicate(t *testing.T) {
	s := NewSimulator(1)
	r := &recorder{ComponentBase: NewComponentBase(s, "rec")}
	for i := 0; i < 20; i++ {
		s.Schedule(r, Time{Tick: Tick(i + 1)}, i, nil)
	}
	var out strings.Builder
	pm := &ProgressMonitor{Out: &out}
	pm.Attach(s, 10)
	s.Run()
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d progress lines, want 2 (no duplicate flush):\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[1], "progress: tick=20 events=20 ") {
		t.Errorf("last line = %q, want the tick=20 periodic report", lines[1])
	}
}

func TestProgressMonitorZeroIntervalPanics(t *testing.T) {
	s := NewSimulator(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Attach with interval 0 did not panic")
		}
	}()
	(&ProgressMonitor{}).Attach(s, 0)
}

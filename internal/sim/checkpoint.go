package sim

import (
	"fmt"
	"sort"

	"supersim/internal/snapshot"
)

// This file is the simulator's checkpoint surface: serializing the PRNG
// streams and scheduling counters, exporting the event queue in partition-
// independent form, and re-injecting a restored queue into a freshly built
// simulator. The container format and component walk live in internal/core;
// this file only knows about sim-owned state.

// EventRecord is one queued event in partition-independent form. The
// (Tick, Eps, Owner, Oseq) key is the event heap's total order (see
// event.go), so a merged, key-sorted record list is identical no matter how
// the simulation was sharded when it was exported — which is what lets a
// snapshot taken at one worker count restore into any other.
//
// Context is restricted to the two shapes production components use (nil or
// a plain int); ExportEvents rejects anything else rather than guessing at a
// serialization.
type EventRecord struct {
	Tick   Tick
	Eps    Epsilon
	Owner  uint32
	Oseq   uint64
	Type   int
	Daemon bool
	HasCtx bool // Context is an int (the only non-nil production shape)
	Ctx    int
}

// Save appends the record to the encoder.
func (r *EventRecord) Save(e *snapshot.Encoder) {
	e.U64(uint64(r.Tick))
	e.U32(uint32(r.Eps))
	e.U32(r.Owner)
	e.U64(r.Oseq)
	e.Int(r.Type)
	e.Bool(r.Daemon)
	e.Bool(r.HasCtx)
	if r.HasCtx {
		e.Int(r.Ctx)
	}
}

// Load reads a record written by Save.
func (r *EventRecord) Load(d *snapshot.Decoder) error {
	r.Tick = Tick(d.U64())
	r.Eps = Epsilon(d.U32())
	r.Owner = d.U32()
	r.Oseq = d.U64()
	r.Type = d.Int()
	r.Daemon = d.Bool()
	r.HasCtx = d.Bool()
	if r.HasCtx {
		r.Ctx = d.Int()
	}
	return d.Err()
}

// ExportEvents returns every queued event as a record. The result is in heap
// (arbitrary) order; callers merge records across shards and sort with
// SortEventRecords. Events whose handler is not a keyed component, or whose
// context is neither nil nor int, cannot be re-bound at restore and are
// reported as errors.
func (s *Simulator) ExportEvents() ([]EventRecord, error) {
	recs := make([]EventRecord, 0, s.queue.len())
	for i := range s.queue.a {
		e := s.queue.a[i].ev
		if e.owner == ^uint32(0) {
			return nil, fmt.Errorf("sim: cannot snapshot event for foreign handler %T (no construction-order key)", e.Handler)
		}
		r := EventRecord{
			Tick: e.Time.Tick, Eps: e.Time.Eps,
			Owner: e.owner, Oseq: e.oseq,
			Type: e.Type, Daemon: e.daemon,
		}
		switch c := e.Context.(type) {
		case nil:
		case int:
			r.HasCtx, r.Ctx = true, c
		default:
			return nil, fmt.Errorf("sim: cannot snapshot event context of type %T (only nil and int are serializable)", c)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// SortEventRecords sorts records by the event heap's total order
// (tick, epsilon, owner, oseq), producing the partition-independent queue
// layout stored in snapshots.
func SortEventRecords(recs []EventRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Eps != b.Eps {
			return a.Eps < b.Eps
		}
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Oseq < b.Oseq
	})
}

// ResetQueue discards every queued event. Restore uses it to drop the
// initial events a fresh build schedules (application init, observer
// daemons) before re-injecting the snapshot's queue, which already contains
// their in-flight successors. The engine work count, if any, is kept
// consistent.
func (s *Simulator) ResetQueue() {
	if s.running {
		panic("sim: ResetQueue while running")
	}
	nonDaemon := s.queue.len() - s.daemons
	for s.queue.len() > 0 {
		e := s.queue.pop()
		e.Handler = nil
		e.Context = nil
		e.daemon = false
		if len(s.free) < maxEventFreeList {
			s.free = append(s.free, e)
		}
	}
	s.daemons = 0
	if sh := s.shard; sh != nil && nonDaemon > 0 {
		//sslint:allow shardsafety — the engine's global work counter is its sanctioned shared-memory seam
		sh.eng.work.Add(-int64(nonDaemon))
	}
}

// InjectEvent enqueues a restored event with its exact saved ordering key,
// bypassing the per-handler sequence counters (those are restored separately
// as component state). The handler must belong to this simulator.
func (s *Simulator) InjectEvent(h Handler, r EventRecord) {
	if h == nil {
		panic("sim: InjectEvent with nil handler")
	}
	if s.running {
		panic("sim: InjectEvent while running")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.Time = Time{Tick: r.Tick, Eps: r.Eps}
	e.Handler = h
	e.Type = r.Type
	if r.HasCtx {
		e.Context = r.Ctx
	} else {
		e.Context = nil
	}
	e.daemon = r.Daemon
	e.owner, e.oseq = r.Owner, r.Oseq
	if r.Daemon {
		s.daemons++
	} else if sh := s.shard; sh != nil {
		//sslint:allow shardsafety — the engine's global work counter is its sanctioned shared-memory seam
		sh.eng.work.Add(1)
	}
	s.queue.push(e)
}

// SetNow moves the simulator clock to a restored checkpoint time. Restore
// sets every shard to {tick: T, eps: 0}; all queued events are at T or
// later, so the time-went-backwards invariant holds for the continuation.
func (s *Simulator) SetNow(t Time) {
	if s.running {
		panic("sim: SetNow while running")
	}
	s.now = t
}

// SetProgress overwrites the executed-event and last-work counters. Restore
// seeds the host simulator with the run-wide totals at the checkpoint (a
// sharded snapshot's per-shard split is partition-dependent, so only the
// totals are stored) and leaves router shards at zero; cumulative totals then
// continue correctly under any worker count.
func (s *Simulator) SetProgress(executed uint64, lastWork Time) {
	if s.running {
		panic("sim: SetProgress while running")
	}
	s.executed = executed
	s.lastWork = lastWork
}

// SaveState serializes the simulator-owned scalar state: scheduling
// counters and every PRNG stream (the base generator plus all DeriveRand
// streams). For sharded runs this is called on the host simulator only —
// order keys are handed out by the host during the build, shard base
// generators are never drawn from, and DeriveRand streams are all derived
// against the host (components derive before adoption). Progress counters
// (executed, lastWork) are partition-dependent per simulator, so the
// container stores run-wide totals instead and restores them with
// SetProgress.
func (s *Simulator) SaveState(e *snapshot.Encoder) {
	e.U32(s.orderGen)
	e.U64(s.seqGen)
	e.Blob(mustMarshalPCG(s.pcg))
	e.U64(uint64(len(s.derived)))
	for i := range s.derived {
		e.Str(s.derived[i].name)
		e.Blob(mustMarshalPCG(s.derived[i].pcg))
	}
}

// LoadState restores the counterpart of SaveState onto a freshly built
// simulator. The derived-stream registry must match by order and name — a
// mismatch means the rebuilt component graph differs from the one that took
// the snapshot, so restoring state into it would be incoherent.
func (s *Simulator) LoadState(d *snapshot.Decoder) error {
	s.orderGen = d.U32()
	s.seqGen = d.U64()
	if err := unmarshalPCG(s.pcg, d.Blob()); err != nil {
		return d.Failf("base PRNG: %v", err)
	}
	n := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if n != uint64(len(s.derived)) {
		return d.Failf("snapshot has %d derived PRNG streams, rebuilt simulator has %d", n, len(s.derived))
	}
	for i := range s.derived {
		name := d.Str()
		if d.Err() != nil {
			return d.Err()
		}
		if name != s.derived[i].name {
			return d.Failf("derived PRNG stream %d is %q in snapshot, %q in rebuilt simulator", i, name, s.derived[i].name)
		}
		if err := unmarshalPCG(s.derived[i].pcg, d.Blob()); err != nil {
			return d.Failf("derived PRNG %q: %v", name, err)
		}
	}
	return d.Err()
}

func mustMarshalPCG(p interface{ MarshalBinary() ([]byte, error) }) []byte {
	b, err := p.MarshalBinary()
	if err != nil {
		// rand.PCG's MarshalBinary cannot fail; a failure here is a stdlib
		// contract change, not a recoverable condition.
		panic(fmt.Sprintf("sim: PCG marshal failed: %v", err))
	}
	return b
}

func unmarshalPCG(p interface{ UnmarshalBinary([]byte) error }, b []byte) error {
	if b == nil {
		return fmt.Errorf("missing PCG state")
	}
	return p.UnmarshalBinary(b)
}

// OrderKey returns the handler's construction-order key — the partition-
// independent component identity that event records are keyed by. Restore
// maps keys back to handlers by walking the rebuilt component graph.
func (c *ComponentBase) OrderKey() uint32 { return c.ord.key }

// SaveOrder serializes the component's scheduling identity: its
// construction-order key (as an integrity check) and its per-handler
// schedule counter, which future events' oseq values continue from.
func (c *ComponentBase) SaveOrder(e *snapshot.Encoder) {
	e.U32(c.ord.key)
	e.U64(c.ord.seq)
}

// LoadOrder restores the counterpart of SaveOrder, verifying that the
// rebuilt component occupies the same construction-order slot.
func (c *ComponentBase) LoadOrder(d *snapshot.Decoder) error {
	key := d.U32()
	seq := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if key != c.ord.key {
		return d.Failf("component %q has construction-order key %d, snapshot says %d — component graph mismatch", c.name, c.ord.key, key)
	}
	c.ord.seq = seq
	return nil
}

package sim

import "fmt"

// Clock represents one clock domain in a multi-frequency design. A clock is
// specified by its cycle time in ticks (the Period) and an optional Phase
// offset in ticks. Designs may instantiate any number of clocks; this is most
// commonly used to model switch frequency speedup where the switch core runs
// at a higher frequency than the links.
type Clock struct {
	period Tick
	phase  Tick
}

// NewClock creates a clock with the given cycle time in ticks and phase
// offset. The period must be positive and the phase must be less than the
// period.
func NewClock(period, phase Tick) *Clock {
	if period == 0 {
		panic("sim: clock period must be positive")
	}
	if phase >= period {
		panic(fmt.Sprintf("sim: clock phase %d must be < period %d", phase, period))
	}
	return &Clock{period: period, phase: phase}
}

// Period returns the cycle time in ticks.
func (c *Clock) Period() Tick { return c.period }

// Phase returns the phase offset in ticks.
func (c *Clock) Phase() Tick { return c.phase }

// Cycle returns the number of complete cycles at or before the given tick.
func (c *Clock) Cycle(t Tick) uint64 {
	if t < c.phase {
		return 0
	}
	return (t - c.phase) / c.period
}

// IsEdge reports whether the given tick lies exactly on a rising edge.
func (c *Clock) IsEdge(t Tick) bool {
	return t >= c.phase && (t-c.phase)%c.period == 0
}

// NextEdge returns the earliest edge tick that is >= t.
func (c *Clock) NextEdge(t Tick) Tick {
	if t <= c.phase {
		return c.phase
	}
	d := t - c.phase
	r := d % c.period
	if r == 0 {
		return t
	}
	return t + (c.period - r)
}

// FutureEdge returns the edge tick `cycles` full cycles after the next edge
// at or after t. FutureEdge(t, 0) == NextEdge(t).
func (c *Clock) FutureEdge(t Tick, cycles uint64) Tick {
	return c.NextEdge(t) + Tick(cycles)*c.period
}

package sim

// Handler is anything that can execute events. Components embed ComponentBase
// and implement ProcessEvent to receive the events they scheduled.
type Handler interface {
	// ProcessEvent executes an event previously scheduled by this handler.
	// The event object is owned by the simulator and recycled after the call
	// returns; handlers must not retain it.
	ProcessEvent(ev *Event)
}

// Event is a unit of future work in the simulation. It carries its execution
// time, the handler that will perform the execution, and optional handler
// specific data (an integer type tag and a context pointer).
type Event struct {
	Time    Time
	Handler Handler
	Type    int
	Context any

	// owner and oseq are the deterministic tiebreak among events at an
	// identical (tick, epsilon): owner is the scheduling handler's
	// construction-order key and oseq its per-handler schedule counter.
	// Unlike a global schedule-order sequence, this key is independent of
	// the interleaving of *different* handlers' Schedule calls — which is
	// what makes sharded parallel execution (see parallel.go) reproduce the
	// serial event order exactly: each shard assigns the same (owner, oseq)
	// pairs the serial run would, no matter how worker goroutines interleave.
	owner  uint32
	oseq   uint64
	daemon bool // scheduled with ScheduleDaemon; excluded from PendingNonDaemon
}

// heapEntry stores an event's ordering key inline so heap comparisons touch
// contiguous memory instead of chasing event pointers — the event queue is
// the simulator's hottest data structure by far. The struct stays 32 bytes:
// the old global sequence split into (owner, oseq) fills the slot that used
// to be padding plus the seq word.
type heapEntry struct {
	tick  Tick
	eps   Epsilon
	owner uint32
	oseq  uint64
	ev    *Event
}

// entryLess orders events by (tick, epsilon, owner, oseq). Two events of the
// same handler at the same time execute in schedule order (oseq); events of
// different handlers at the same time execute in handler construction order
// (owner), which is fixed at build time and therefore identical no matter
// how the simulation is partitioned across shards.
func entryLess(a, b *heapEntry) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.eps != b.eps {
		return a.eps < b.eps
	}
	if a.owner != b.owner {
		return a.owner < b.owner
	}
	return a.oseq < b.oseq
}

// eventHeap is a binary min-heap of events ordered by (tick, epsilon, owner,
// oseq). It is implemented directly (rather than via container/heap) to avoid
// interface conversions on the hot path.
type eventHeap struct {
	a []heapEntry
}

func (h *eventHeap) len() int { return len(h.a) }

//sslint:hotpath
func (h *eventHeap) push(e *Event) {
	//sslint:allow hotpath — amortized heap growth, bounded by the pending-event high-water mark
	h.a = append(h.a, heapEntry{tick: e.Time.Tick, eps: e.Time.Eps, owner: e.owner, oseq: e.oseq, ev: e})
	// sift up
	a := h.a
	i := len(a) - 1
	item := a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&item, &a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = item
}

//sslint:hotpath
func (h *eventHeap) pop() *Event {
	a := h.a
	n := len(a)
	top := a[0].ev
	last := a[n-1]
	a[n-1].ev = nil
	h.a = a[:n-1]
	n--
	if n == 0 {
		return top
	}
	// sift down the previous last element
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		m := l
		if r < n && entryLess(&a[r], &a[l]) {
			m = r
		}
		if !entryLess(&a[m], &last) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = last
	return top
}

//sslint:hotpath
func (h *eventHeap) peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0].ev
}

package sim

// Handler is anything that can execute events. Components embed ComponentBase
// and implement ProcessEvent to receive the events they scheduled.
type Handler interface {
	// ProcessEvent executes an event previously scheduled by this handler.
	// The event object is owned by the simulator and recycled after the call
	// returns; handlers must not retain it.
	ProcessEvent(ev *Event)
}

// Event is a unit of future work in the simulation. It carries its execution
// time, the handler that will perform the execution, and optional handler
// specific data (an integer type tag and a context pointer).
type Event struct {
	Time    Time
	Handler Handler
	Type    int
	Context any

	seq    uint64 // FIFO tiebreak among identical times (determinism)
	daemon bool   // scheduled with ScheduleDaemon; excluded from PendingNonDaemon
}

// heapEntry stores an event's ordering key inline so heap comparisons touch
// contiguous memory instead of chasing event pointers — the event queue is
// the simulator's hottest data structure by far.
type heapEntry struct {
	tick Tick
	eps  Epsilon
	seq  uint64
	ev   *Event
}

func entryLess(a, b *heapEntry) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	if a.eps != b.eps {
		return a.eps < b.eps
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events ordered by (tick, epsilon, seq).
// It is implemented directly (rather than via container/heap) to avoid
// interface conversions on the hot path.
type eventHeap struct {
	a []heapEntry
}

func (h *eventHeap) len() int { return len(h.a) }

//sslint:hotpath
func (h *eventHeap) push(e *Event) {
	//sslint:allow hotpath — amortized heap growth, bounded by the pending-event high-water mark
	h.a = append(h.a, heapEntry{tick: e.Time.Tick, eps: e.Time.Eps, seq: e.seq, ev: e})
	// sift up
	a := h.a
	i := len(a) - 1
	item := a[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&item, &a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = item
}

//sslint:hotpath
func (h *eventHeap) pop() *Event {
	a := h.a
	n := len(a)
	top := a[0].ev
	last := a[n-1]
	a[n-1].ev = nil
	h.a = a[:n-1]
	n--
	if n == 0 {
		return top
	}
	// sift down the previous last element
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		m := l
		if r < n && entryLess(&a[r], &a[l]) {
			m = r
		}
		if !entryLess(&a[m], &last) {
			break
		}
		a[i] = a[m]
		i = m
	}
	a[i] = last
	return top
}

//sslint:hotpath
func (h *eventHeap) peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0].ev
}

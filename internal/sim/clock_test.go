package sim

import (
	"testing"
	"testing/quick"
)

func TestClockEdges(t *testing.T) {
	c := NewClock(3, 0) // Clock A from the paper's Figure 2b: 3 tick cycle time
	wantEdges := map[Tick]bool{0: true, 3: true, 6: true, 9: true}
	for tick := Tick(0); tick < 10; tick++ {
		if c.IsEdge(tick) != wantEdges[tick] {
			t.Errorf("IsEdge(%d) = %v", tick, c.IsEdge(tick))
		}
	}
}

func TestClockNextEdge(t *testing.T) {
	c := NewClock(2, 0) // Clock B from Figure 2b: 2 tick cycle time
	cases := []struct{ in, want Tick }{
		{0, 0}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 6},
	}
	for _, cse := range cases {
		if got := c.NextEdge(cse.in); got != cse.want {
			t.Errorf("NextEdge(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestClockPhase(t *testing.T) {
	c := NewClock(4, 1)
	if !c.IsEdge(1) || !c.IsEdge(5) || c.IsEdge(0) || c.IsEdge(4) {
		t.Fatal("phase edges wrong")
	}
	if c.NextEdge(0) != 1 {
		t.Fatalf("NextEdge(0) = %d, want 1", c.NextEdge(0))
	}
	if c.NextEdge(2) != 5 {
		t.Fatalf("NextEdge(2) = %d, want 5", c.NextEdge(2))
	}
}

func TestClockCycle(t *testing.T) {
	c := NewClock(3, 0)
	cases := []struct {
		tick Tick
		want uint64
	}{{0, 0}, {1, 0}, {2, 0}, {3, 1}, {5, 1}, {6, 2}, {300, 100}}
	for _, cse := range cases {
		if got := c.Cycle(cse.tick); got != cse.want {
			t.Errorf("Cycle(%d) = %d, want %d", cse.tick, got, cse.want)
		}
	}
}

func TestClockFutureEdge(t *testing.T) {
	c := NewClock(5, 0)
	if got := c.FutureEdge(7, 0); got != 10 {
		t.Fatalf("FutureEdge(7,0) = %d, want 10", got)
	}
	if got := c.FutureEdge(10, 3); got != 25 {
		t.Fatalf("FutureEdge(10,3) = %d, want 25", got)
	}
}

func TestClockInvalidPanics(t *testing.T) {
	mustPanic(t, func() { NewClock(0, 0) })
	mustPanic(t, func() { NewClock(3, 3) })
}

func TestClockNextEdgeProperties(t *testing.T) {
	prop := func(period16, phase16 uint16, tick uint32) bool {
		period := Tick(period16%1000) + 1
		phase := Tick(phase16) % period
		c := NewClock(period, phase)
		e := c.NextEdge(Tick(tick))
		// e is an edge, e >= tick, and no edge exists in [tick, e)
		if !c.IsEdge(e) || e < Tick(tick) {
			return false
		}
		if e >= period && e-period >= Tick(tick) {
			return false // a closer edge existed
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

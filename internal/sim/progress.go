package sim

import (
	"expvar"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Process-wide expvar gauges fed by ProgressMonitor, for scraping via the
// standard /debug/vars endpoint when an HTTP server is running. They are
// published lazily on first Attach (expvar panics on duplicate names).
var (
	expvarOnce      sync.Once
	gaugeEvents     *expvar.Int
	gaugeEventsRate *expvar.Float
	gaugeHeapBytes  *expvar.Int
	gaugeTick       *expvar.Int
)

func publishGauges() {
	expvarOnce.Do(func() {
		gaugeEvents = expvar.NewInt("supersim.events")
		gaugeEventsRate = expvar.NewFloat("supersim.events_per_sec")
		gaugeHeapBytes = expvar.NewInt("supersim.heap_bytes")
		gaugeTick = expvar.NewInt("supersim.tick")
	})
}

// ProgressMonitor periodically reports simulation progress: executed events,
// execution rate (events per wall-clock second since the previous report),
// the current simulated tick, and live heap bytes. Every report updates the
// supersim.* expvar gauges; if Out is non-nil, one text line per report is
// written there as well.
//
// The monitor reads the wall clock and runtime.MemStats, but only inside the
// Monitor callback — it never feeds anything back into the simulation, so
// determinism is unaffected. Perf work on the simulator should be measured
// with these hooks (or the -cpuprofile/-memprofile flags of cmd/supersim and
// `go test -bench`), not guessed.
type ProgressMonitor struct {
	Out io.Writer // optional text sink; nil updates expvar gauges only

	lastEvents uint64
	lastWall   time.Time
}

// Attach registers the monitor on s, reporting every interval executed
// events. It overwrites any previously registered Monitor callback.
func (p *ProgressMonitor) Attach(s *Simulator, interval uint64) {
	if interval == 0 {
		panic("sim: ProgressMonitor interval must be positive")
	}
	publishGauges()
	p.lastWall = time.Now()
	p.lastEvents = s.Executed()
	s.MonitorInterval = interval
	s.Monitor = p.report
}

func (p *ProgressMonitor) report(now Time, executed uint64) {
	wall := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rate := 0.0
	if secs := wall.Sub(p.lastWall).Seconds(); secs > 0 {
		rate = float64(executed-p.lastEvents) / secs
	}
	gaugeEvents.Set(int64(executed))
	gaugeEventsRate.Set(rate)
	gaugeHeapBytes.Set(int64(ms.HeapAlloc))
	gaugeTick.Set(int64(now.Tick))
	if p.Out != nil {
		fmt.Fprintf(p.Out, "progress: tick=%d events=%d rate=%.0f/s heap=%.1fMiB\n",
			now.Tick, executed, rate, float64(ms.HeapAlloc)/(1<<20))
	}
	p.lastEvents = executed
	p.lastWall = wall
}

package sim

import (
	"expvar"
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Process-wide expvar gauges fed by ProgressMonitor, for scraping via the
// standard /debug/vars endpoint when an HTTP server is running. They are
// published lazily on first Attach (expvar panics on duplicate names).
var (
	expvarOnce      sync.Once
	gaugeEvents     *expvar.Int
	gaugeEventsRate *expvar.Float
	gaugeTicksRate  *expvar.Float
	gaugeHeapBytes  *expvar.Int
	gaugeLiveBytes  *expvar.Int
	gaugeTick       *expvar.Int
)

func publishGauges() {
	expvarOnce.Do(func() {
		gaugeEvents = expvar.NewInt("supersim.events")
		gaugeEventsRate = expvar.NewFloat("supersim.events_per_sec")
		gaugeTicksRate = expvar.NewFloat("supersim.ticks_per_sec")
		gaugeHeapBytes = expvar.NewInt("supersim.heap_bytes")
		gaugeLiveBytes = expvar.NewInt("supersim.heap_live_bytes")
		gaugeTick = expvar.NewInt("supersim.tick")
	})
}

// liveHeapSample reads the post-GC live heap from runtime/metrics: unlike
// MemStats.HeapAlloc (live + not-yet-collected garbage) it answers "how much
// memory does the simulation actually retain", which is the number perf work
// on the pooled traffic path cares about.
var liveHeapSample = []metrics.Sample{{Name: "/gc/heap/live:bytes"}}

// ProgressMonitor periodically reports simulation progress: executed events,
// execution rate (events per wall-clock second since the previous report),
// simulated-time rate (ticks per wall-clock second), the current simulated
// tick, current and post-GC live heap bytes, and — when EndTick is set — an
// ETA extrapolated from the simulated-time rate. Every report updates the
// supersim.* expvar gauges; if Out is non-nil, one text line per report is
// written there as well.
//
// Attach also registers the simulator's MonitorFinish hook, so the final
// partial interval is reported when Run returns instead of being lost to the
// interval rounding.
//
// The monitor reads the wall clock and runtime heap statistics, but only
// inside the Monitor callback — it never feeds anything back into the
// simulation, so determinism is unaffected. Perf work on the simulator
// should be measured with these hooks (or the -cpuprofile/-memprofile flags
// of cmd/supersim and `go test -bench`), not guessed.
type ProgressMonitor struct {
	Out io.Writer // optional text sink; nil updates expvar gauges only

	// EndTick, when non-zero, is the tick the run is expected to finish at
	// (known for fixed-horizon RunUntil drives); each report then includes an
	// ETA computed from the current ticks/sec rate.
	EndTick Tick

	lastEvents uint64
	lastTick   Tick
	lastWall   time.Time
}

// Attach registers the monitor on s, reporting every interval executed
// events and once more when Run returns. It overwrites any previously
// registered Monitor and MonitorFinish callbacks.
func (p *ProgressMonitor) Attach(s *Simulator, interval uint64) {
	if interval == 0 {
		panic("sim: ProgressMonitor interval must be positive")
	}
	publishGauges()
	p.lastWall = time.Now()
	p.lastEvents = s.Executed()
	p.lastTick = s.Now().Tick
	s.MonitorInterval = interval
	s.Monitor = p.report
	s.MonitorFinish = p.finish
}

func (p *ProgressMonitor) report(now Time, executed uint64) {
	p.emit(now, executed, false)
}

// finish flushes the last partial interval when the simulator stops; it is
// skipped when the final event count coincides with the last periodic report
// (nothing new to say).
func (p *ProgressMonitor) finish(now Time, executed uint64) {
	if executed == p.lastEvents {
		return
	}
	p.emit(now, executed, true)
}

func (p *ProgressMonitor) emit(now Time, executed uint64, final bool) {
	wall := time.Now()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	metrics.Read(liveHeapSample)
	live := liveHeapSample[0].Value.Uint64()
	evRate, tickRate := 0.0, 0.0
	if secs := wall.Sub(p.lastWall).Seconds(); secs > 0 {
		evRate = float64(executed-p.lastEvents) / secs
		tickRate = float64(now.Tick-p.lastTick) / secs
	}
	gaugeEvents.Set(int64(executed))
	gaugeEventsRate.Set(evRate)
	gaugeTicksRate.Set(tickRate)
	gaugeHeapBytes.Set(int64(ms.HeapAlloc))
	gaugeLiveBytes.Set(int64(live))
	gaugeTick.Set(int64(now.Tick))
	if p.Out != nil {
		label := "progress"
		if final {
			label = "finished"
		}
		fmt.Fprintf(p.Out, "%s: tick=%d events=%d rate=%.0f/s ticks/s=%.0f heap=%.1fMiB live=%.1fMiB",
			label, now.Tick, executed, evRate, tickRate,
			float64(ms.HeapAlloc)/(1<<20), float64(live)/(1<<20))
		if p.EndTick > now.Tick && tickRate > 0 && !final {
			eta := float64(p.EndTick-now.Tick) / tickRate
			fmt.Fprintf(p.Out, " eta=%s", (time.Duration(eta * float64(time.Second))).Round(time.Second))
		}
		fmt.Fprintln(p.Out)
	}
	p.lastEvents = executed
	p.lastTick = now.Tick
	p.lastWall = wall
}

package sim

import "testing"

// BenchmarkHeapChurn measures schedule+execute throughput with a realistic
// pending-set size (the event queue is the simulator's hottest structure).
func BenchmarkHeapChurn(b *testing.B) {
	s := NewSimulator(1)
	var h Handler
	h = HandlerFunc(func(ev *Event) {
		s.Schedule(h, s.Now().Plus(1+Tick(ev.Type%101)), ev.Type, nil)
	})
	const pending = 4096
	for i := 0; i < pending; i++ {
		s.Schedule(h, Time{Tick: Tick(i%101) + 1}, i, nil)
	}
	b.ResetTimer()
	executed := uint64(0)
	for executed < uint64(b.N) {
		executed += s.RunUntil(s.Now().Tick + 101)
	}
}

// BenchmarkSchedule measures raw push cost into a deep queue.
func BenchmarkSchedule(b *testing.B) {
	s := NewSimulator(1)
	h := HandlerFunc(func(ev *Event) {})
	for i := 0; i < b.N; i++ {
		s.Schedule(h, Time{Tick: Tick(i) + 1}, 0, nil)
	}
}

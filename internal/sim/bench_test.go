package sim

import "testing"

// BenchmarkHeapChurn measures schedule+execute throughput with a realistic
// pending-set size (the event queue is the simulator's hottest structure).
func BenchmarkHeapChurn(b *testing.B) {
	s := NewSimulator(1)
	var h Handler
	h = HandlerFunc(func(ev *Event) {
		s.Schedule(h, s.Now().Plus(1+Tick(ev.Type%101)), ev.Type, nil)
	})
	const pending = 4096
	for i := 0; i < pending; i++ {
		s.Schedule(h, Time{Tick: Tick(i%101) + 1}, i, nil)
	}
	b.ResetTimer()
	executed := uint64(0)
	for executed < uint64(b.N) {
		executed += s.RunUntil(s.Now().Tick + 101)
	}
}

// BenchmarkEventHeapPushPop measures the raw event heap operations in
// isolation — no handler dispatch, no free-list — at a realistic pending-set
// size. The heap is the simulator's hottest data structure; this benchmark
// exists so heap changes are measured standalone (run with -benchmem: the
// steady state must not allocate).
func BenchmarkEventHeapPushPop(b *testing.B) {
	const pending = 4096
	var h eventHeap
	events := make([]Event, pending)
	for i := range events {
		events[i].Time = Time{Tick: Tick(i % 257)}
		events[i].owner = uint32(i%17) + 1
		events[i].oseq = uint64(i)
		h.push(&events[i])
	}
	seq := uint64(pending)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := h.pop()
		e.Time.Tick += Tick(1 + seq%257) // reinsert in the near future
		e.oseq = seq
		seq++
		h.push(e)
	}
}

// BenchmarkSchedule measures raw push cost into a deep queue.
func BenchmarkSchedule(b *testing.B) {
	s := NewSimulator(1)
	h := HandlerFunc(func(ev *Event) {})
	for i := 0; i < b.N; i++ {
		s.Schedule(h, Time{Tick: Tick(i) + 1}, 0, nil)
	}
}

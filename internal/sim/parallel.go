// Conservative parallel discrete-event engine.
//
// An Engine coordinates several Simulators ("shards"), each single-threaded,
// executing one partition of the component graph. Shards interact only
// through channels with latency >= 1; that latency is the lookahead of
// classic conservative PDES (Chandy-Misra-Bryant): a shard may safely execute
// every event strictly before
//
//	horizon = min over incoming cross-shard links (src.commit + link latency)
//
// because any future cross-shard arrival from src carries a timestamp of at
// least src's committed time plus the link latency. Cross-shard sends are
// timestamped posts into the destination shard's inbox; each worker loop is
//
//  1. read upstream commits and compute the horizon,
//  2. drain the inbox,
//  3. execute local events with time < horizon,
//  4. publish the new commit and wake dependent shards.
//
// The order of steps 1 and 2 is load-bearing: a post that lands after the
// drain was sent at a source commit no older than the values read in step 1,
// so its timestamp is >= the horizon and belongs to a later window. Reading
// commits after draining would let a post slip below the window boundary.
//
// Determinism does not depend on inbox arrival order: events are keyed by
// (tick, epsilon, owner, oseq) — see event.go — where both owner and oseq are
// derived from the scheduling component, not from global interleaving, so
// each shard's local execution order is identical to the serial order
// restricted to that shard, for any worker count and any goroutine schedule.
package sim

import (
	"sync"
	"sync/atomic"
)

// RemoteReceiver is implemented by components that accept cross-shard
// deliveries — the destination-side endpoint of a cross-shard channel. The
// engine invokes ReceiveRemote on the receiver's own shard goroutine, with
// the shard's simulator quiescent, so the implementation may freely touch
// shard-local state and schedule events at the post's timestamp.
type RemoteReceiver interface {
	ReceiveRemote(at Tick, ptr any, aux int)
}

// ShardProbe observes one shard's conservative scheduler: horizon rounds,
// committed lookahead windows, cross-shard inbox traffic, lookahead stalls,
// and quiescence checks. Probes are attached before Run via SetShardProbe and
// are nil when engine introspection is disabled, so every call site is
// nil-guarded and the disabled path costs one branch.
//
// All methods except InboxPost are invoked on the owning shard's worker
// goroutine. InboxPost is invoked on the *posting* (source) shard's goroutine,
// so implementations must make it safe for concurrent use with the other
// methods (atomics suffice).
type ShardProbe interface {
	// Round is called once per scheduler pass with the computed horizon
	// (already clipped to the phase cap). saturated reports an unbounded
	// horizon: no upstream edge constrains this shard.
	Round(horizon Tick, saturated bool)
	// WindowCommitted is called after a lookahead window executes, with the
	// newly committed tick and the number of non-daemon events the window
	// drained.
	WindowCommitted(commit Tick, events uint64)
	// InboxPost is called after a cross-shard post lands in this shard's
	// inbox, with the inbox occupancy including the new post. Source-shard
	// goroutine; must be concurrency-safe.
	InboxPost(depth int)
	// InboxDrained is called after the shard applies a non-empty inbox batch.
	InboxDrained(batch int)
	// BlockedEnter/BlockedExit bracket the worker parking on its wake channel
	// because neither the inbox nor the horizon allowed progress.
	BlockedEnter()
	BlockedExit()
	// QuiesceCheck is called at each global work-count poll with the result.
	QuiesceCheck(quiesced bool)
}

// remotePost is one timestamped cross-shard message.
type remotePost struct {
	at  Tick
	tgt RemoteReceiver
	ptr any
	aux int
}

// inEdge is one incoming cross-shard dependency: the source shard and the
// minimum latency of any link from it, the lookahead bound.
type inEdge struct {
	src *shardState
	lat Tick
}

// shardState is the engine-side state of one shard: its inbox, its committed
// time, and its dependency edges. It is reachable from the Simulator via the
// shard field so Schedule can maintain the engine's global work count.
type shardState struct {
	id  int
	sim *Simulator
	eng *Engine

	// commit is the shard's committed time: every local event with
	// tick < commit has executed and its cross-shard sends are posted.
	// Written only by the owning worker, read by downstream shards.
	commit atomic.Uint64

	mu    sync.Mutex
	inbox []remotePost
	spare []remotePost // double buffer: drained batches swap in, zero steady-state alloc

	in  []inEdge
	out []*shardState

	// wake has capacity 1: a notify while the buffer is full is a no-op,
	// which is exactly the semantics needed (the worker re-derives all state
	// from commits and the inbox on each pass, so wake-ups can coalesce).
	wake chan struct{}

	// pendingPub is the shard's queued non-daemon event count as of its last
	// committed window, for cross-shard PendingNonDaemon aggregation.
	pendingPub atomic.Int64

	// probe observes this shard's scheduler; nil when engine introspection is
	// disabled. Set before Run and read-only afterwards.
	probe ShardProbe
}

// RemotePort is the source-side handle of a cross-shard link, created by
// Engine.Link. The source endpoint posts timestamped messages through it
// instead of scheduling directly on the (remote) destination simulator.
type RemotePort struct {
	src *shardState
	dst *shardState
	tgt RemoteReceiver
}

// SrcNow returns the current time of the sending shard. Source-side endpoint
// code must use this rather than its component Sim().Now(): an adopted
// endpoint's simulator is the destination shard's, whose clock is unrelated.
func (p *RemotePort) SrcNow() Time { return p.src.sim.now }

// Send posts a timestamped message to the destination shard's inbox.
// It is called from the source shard's goroutine.
//
//sslint:hotpath
func (p *RemotePort) Send(at Tick, ptr any, aux int) {
	d := p.dst
	d.eng.work.Add(1)
	d.mu.Lock()
	//sslint:allow hotpath — inbox buffer reuse via double-buffering bounds growth to the per-window burst
	d.inbox = append(d.inbox, remotePost{at: at, tgt: p.tgt, ptr: ptr, aux: aux})
	depth := len(d.inbox)
	d.mu.Unlock()
	if d.probe != nil {
		d.probe.InboxPost(depth)
	}
	d.notify()
}

func (sh *shardState) notify() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// horizon returns the tick below which this shard may safely execute, given
// the currently committed times of its upstream shards. A shard with no
// incoming cross-shard links may run to completion.
func (sh *shardState) horizon() Tick {
	h := ^Tick(0)
	for i := range sh.in {
		c := Tick(sh.in[i].src.commit.Load())
		b := c + sh.in[i].lat
		if b < c {
			// The upstream shard ran to completion (committed the maximum
			// tick); saturate instead of wrapping to 0.
			b = ^Tick(0)
		}
		if b < h {
			h = b
		}
	}
	return h
}

// drain applies every queued inbox post on the shard's own goroutine and
// reports whether any post was applied. The mutex hand-off is the
// happens-before edge that transfers ownership of posted objects (flits)
// from the source shard to this one.
func (sh *shardState) drain() bool {
	sh.mu.Lock()
	batch := sh.inbox
	sh.inbox = sh.spare[:0]
	sh.mu.Unlock()
	if len(batch) == 0 {
		sh.spare = batch
		return false
	}
	for i := range batch {
		p := &batch[i]
		p.tgt.ReceiveRemote(p.at, p.ptr, p.aux)
		batch[i] = remotePost{}
	}
	sh.eng.work.Add(-int64(len(batch)))
	if sh.probe != nil {
		sh.probe.InboxDrained(len(batch))
	}
	sh.spare = batch
	return true
}

// Engine coordinates a set of shard simulators through conservative
// lookahead synchronization. Build one with NewEngine around the host
// simulator (shard 0), add shards, adopt components, declare cross-shard
// links, then call Run once.
type Engine struct {
	host   *Simulator
	shards []*shardState

	// work counts non-daemon events queued on any shard plus unapplied
	// inbox posts. Zero means the simulation is globally quiescent.
	work atomic.Int64

	stop   atomic.Bool
	finish atomic.Bool

	pmu    sync.Mutex
	panicV any
}

// NewEngine wraps the host simulator as shard 0 of a new engine. The host
// retains everything already built and scheduled on it; components moved to
// other shards afterwards must not have pending events (Adopt checks are the
// caller's responsibility — in practice components schedule only in response
// to traffic, which starts after Run).
func NewEngine(host *Simulator) *Engine {
	if host.shard != nil {
		panic("sim: simulator is already attached to an engine")
	}
	e := &Engine{host: host}
	hs := &shardState{id: 0, sim: host, eng: e, wake: make(chan struct{}, 1)}
	host.shard = hs
	e.shards = append(e.shards, hs)
	e.work.Store(int64(host.queue.len() - host.daemons))
	return e
}

// Host returns shard 0's simulator.
func (e *Engine) Host() *Simulator { return e.host }

// SetShardProbe attaches an observer to shard i's scheduler. It must be
// called before Run; the probe is read without synchronization by the worker
// goroutines afterwards.
func (e *Engine) SetShardProbe(i int, p ShardProbe) { e.shards[i].probe = p }

// ShardStatus is a point-in-time snapshot of one shard's engine state, for
// introspection endpoints. Commit and Pending are the shard's published
// values as of its last committed window; InboxDepth is the current undrained
// cross-shard post count.
type ShardStatus struct {
	Commit     Tick
	Pending    int64
	InboxDepth int
}

// ShardStatus returns shard i's current engine state. Safe to call from any
// goroutine while the engine runs.
func (e *Engine) ShardStatus(i int) ShardStatus {
	sh := e.shards[i]
	sh.mu.Lock()
	depth := len(sh.inbox)
	sh.mu.Unlock()
	return ShardStatus{
		Commit:     Tick(sh.commit.Load()),
		Pending:    sh.pendingPub.Load(),
		InboxDepth: depth,
	}
}

// NumShards returns the number of shards, including the host.
func (e *Engine) NumShards() int { return len(e.shards) }

// AddShard creates a new empty shard simulator sharing the host's seed and
// observer attachments, and returns it.
func (e *Engine) AddShard() *Simulator {
	s := NewSimulator(e.host.seed)
	s.verifier = e.host.verifier
	s.telemetry = e.host.telemetry
	sh := &shardState{id: len(e.shards), sim: s, eng: e, wake: make(chan struct{}, 1)}
	s.shard = sh
	e.shards = append(e.shards, sh)
	return s
}

// Adopt moves a component built against the host simulator onto the given
// shard's simulator: its Sim() — and therefore its clock, event queue, and
// Schedule calls — become the shard's. Only types embedding ComponentBase
// can be adopted.
func (e *Engine) Adopt(h Handler, to *Simulator) {
	rb, ok := h.(rebindable)
	if !ok {
		panic("sim: handler does not embed ComponentBase and cannot be adopted")
	}
	if to.shard == nil || to.shard.eng != e {
		panic("sim: Adopt target simulator is not a shard of this engine")
	}
	rb.rebind(to)
}

// Link declares a cross-shard delivery edge from src to dst with the given
// lookahead (the channel latency, which must be >= 1) and destination
// endpoint, returning the port the source-side endpoint posts through.
// Multiple links between the same shard pair are merged into one horizon
// edge using the minimum latency.
func (e *Engine) Link(src, dst *Simulator, latency Tick, tgt RemoteReceiver) *RemotePort {
	if latency == 0 {
		panic("sim: cross-shard link requires latency >= 1 for conservative lookahead")
	}
	if tgt == nil {
		panic("sim: cross-shard link requires a destination receiver")
	}
	ss, ds := src.shard, dst.shard
	if ss == nil || ds == nil || ss.eng != e || ds.eng != e {
		panic("sim: Link endpoints must be shards of this engine")
	}
	if ss == ds {
		panic("sim: Link endpoints must be distinct shards")
	}
	found := false
	for i := range ds.in {
		if ds.in[i].src == ss {
			if latency < ds.in[i].lat {
				ds.in[i].lat = latency
			}
			found = true
			break
		}
	}
	if !found {
		ds.in = append(ds.in, inEdge{src: ss, lat: latency})
		ss.out = append(ss.out, ds)
	}
	return &RemotePort{src: ss, dst: ds, tgt: tgt}
}

// Run executes the simulation across all shards until it is globally
// quiescent (no queued non-daemon events and no in-flight posts) or stopped,
// then finalizes. It returns the total non-daemon events executed and the
// latest LastWork time across shards — the simulation's logical end. Daemon
// events queued beyond the last real work (trailing watchdog/snapshot
// wake-ups) are deliberately not chased: they are pure observers, and forcing
// every shard to lock-step lookahead windows toward them would serialize the
// drain.
//
// Run is equivalent to RunUntil(^Tick(0)) followed by Finish. Checkpointing
// drivers use the phased form directly: step to a snapshot tick with
// RunUntil, settle cross-shard posts with DrainCross, serialize, repeat, and
// call Finish exactly once at the true end of the run.
func (e *Engine) Run() (uint64, Time) {
	e.RunUntil(^Tick(0))
	return e.Finish()
}

// RunUntil executes events across all shards until every shard has committed
// the given tick (every event strictly before it has executed), the
// simulation is globally quiescent, or it is stopped. Shards run their usual
// conservative windows with the horizon additionally clipped to the cap, so
// a capped phase executes exactly the serial RunUntil(cap) prefix of the
// run. A panic on any shard stops all workers and is re-raised here.
//
// RunUntil may be called repeatedly with increasing ticks; commit times
// persist across phases. After a capped phase, cross-shard posts sent by the
// final windows may still sit in inboxes — callers that need a complete
// global state at the cap (checkpointing) must call DrainCross before
// reading it.
func (e *Engine) RunUntil(tick Tick) {
	var wg sync.WaitGroup
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh *shardState) {
			defer wg.Done()
			e.runShard(sh, tick)
		}(sh)
	}
	wg.Wait()
	if e.panicV != nil {
		panic(e.panicV)
	}
}

// DrainCross applies every undrained cross-shard post on the calling
// goroutine. It must only be called between phases (no workers running), at
// which point every post targets the current or a later window; the posts
// become locally queued events on their destination shards, completing the
// global state for a snapshot.
func (e *Engine) DrainCross() {
	for _, sh := range e.shards {
		sh.drain()
	}
}

// Quiesced reports whether the simulation is globally quiescent: no queued
// non-daemon events on any shard and no undrained cross-shard posts. It is
// only meaningful between phases.
func (e *Engine) Quiesced() bool { return e.work.Load() == 0 }

// Stopped reports whether the run was halted by Stop on any shard.
func (e *Engine) Stopped() bool { return e.stop.Load() }

// SeedCommit marks every shard as having committed the given tick. Restore
// uses it after rebuilding state at a checkpoint tick T: every queued event
// is at T or later, so committing T is vacuously sound, and without it the
// first phase would crawl from tick 0 to T in empty lookahead windows. It
// also refreshes each shard's published pending count from its restored
// queue.
func (e *Engine) SeedCommit(tick Tick) {
	for _, sh := range e.shards {
		if Tick(sh.commit.Load()) < tick {
			sh.commit.Store(uint64(tick))
		}
		sh.pendingPub.Store(int64(sh.sim.queue.len() - sh.sim.daemons))
	}
}

// Finish finalizes a run driven by RunUntil phases: it totals the non-daemon
// events executed, computes the latest LastWork across shards, and flushes
// the host's periodic reporters exactly as a serial Run would. Call it once,
// after the last phase.
func (e *Engine) Finish() (uint64, Time) {
	var events uint64
	var end Time
	for _, sh := range e.shards {
		events += sh.sim.executed
		if end.Before(sh.sim.lastWork) {
			end = sh.sim.lastWork
		}
	}
	e.host.FinishMonitor()
	return events, end
}

func (e *Engine) wakeAll() {
	for _, sh := range e.shards {
		sh.notify()
	}
}

func (e *Engine) runShard(sh *shardState, cap Tick) {
	defer func() {
		if r := recover(); r != nil {
			e.pmu.Lock()
			if e.panicV == nil {
				e.panicV = r
			}
			e.pmu.Unlock()
			e.stop.Store(true)
			e.wakeAll()
		}
	}()
	for {
		if e.stop.Load() || e.finish.Load() {
			// finish persists across phases: once the simulation is globally
			// quiescent, a later capped phase must not dig into the trailing
			// daemon events a completed run deliberately leaves queued.
			return
		}
		// Horizon before drain — see the package comment for why.
		h := sh.horizon()
		if h > cap {
			h = cap
		}
		if sh.probe != nil {
			sh.probe.Round(h, h == ^Tick(0))
		}
		progressed := sh.drain()
		if committed := Tick(sh.commit.Load()); h > committed {
			n := sh.sim.runUntil(h, h == ^Tick(0))
			sh.pendingPub.Store(int64(sh.sim.queue.len() - sh.sim.daemons))
			sh.commit.Store(uint64(h))
			for _, d := range sh.out {
				d.notify()
			}
			if sh.probe != nil {
				sh.probe.WindowCommitted(h, n)
			}
			progressed = true
		}
		if sh.sim.stopped {
			// Stop on any shard (error paths, test drivers) halts the run.
			e.stop.Store(true)
			e.wakeAll()
			return
		}
		quiesced := e.work.Load() == 0
		if sh.probe != nil {
			sh.probe.QuiesceCheck(quiesced)
		}
		if quiesced {
			e.finish.Store(true)
			e.wakeAll()
			return
		}
		if e.finish.Load() {
			return
		}
		if Tick(sh.commit.Load()) >= cap {
			// Phase cap reached: this shard's prefix is complete. The check
			// sits after the stop/finish checks and before the sleep so a
			// capped shard never blocks on a wake that will not come.
			return
		}
		if !progressed {
			if sh.probe != nil {
				sh.probe.BlockedEnter()
			}
			<-sh.wake
			if sh.probe != nil {
				sh.probe.BlockedExit()
			}
		}
	}
}

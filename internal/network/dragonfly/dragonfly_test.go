package dragonfly

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

func build(t *testing.T) *Dragonfly {
	t.Helper()
	return New(sim.NewSimulator(1), config.MustParse(`{
	  "topology": "dragonfly",
	  "concentration": 2,
	  "group_size": 2,
	  "global_links": 2,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 4, "crossbar_latency": 1},
	  "routing": {"algorithm": "minimal"}
	}`))
}

func TestBalancedShape(t *testing.T) {
	d := build(t)
	// a=2, h=2 => groups = 5, routers = 10, terminals = 20
	if d.groups != 5 {
		t.Fatalf("groups = %d", d.groups)
	}
	if d.NumRouters() != 10 || d.NumTerminals() != 20 {
		t.Fatalf("routers=%d terminals=%d", d.NumRouters(), d.NumTerminals())
	}
	// radix = p + (a-1) + h = 2 + 1 + 2 = 5
	if d.Router(0).Radix() != 5 {
		t.Fatalf("radix = %d", d.Router(0).Radix())
	}
}

func TestPortLayout(t *testing.T) {
	d := build(t)
	if d.localPort(1) != 2 {
		t.Fatalf("local port = %d", d.localPort(1))
	}
	if d.globalPort(0) != 3 || d.globalPort(1) != 4 {
		t.Fatal("global ports wrong")
	}
}

func TestGlobalOwnerBijective(t *testing.T) {
	d := build(t)
	// Every (group, target group) pair maps to a unique (router, port) slot
	// within the group, and the reverse mapping from the target group points
	// back consistently.
	for g := 0; g < d.groups; g++ {
		seen := map[[2]int]int{}
		for tg := 0; tg < d.groups; tg++ {
			if tg == g {
				continue
			}
			r, p := d.globalOwner(g, tg)
			if r < 0 || r >= d.a || p < 0 || p >= d.h {
				t.Fatalf("owner out of range: g=%d tg=%d -> (%d,%d)", g, tg, r, p)
			}
			if prev, dup := seen[[2]int{r, p}]; dup {
				t.Fatalf("slot (%d,%d) of group %d serves both %d and %d", r, p, g, prev, tg)
			}
			seen[[2]int{r, p}] = tg
		}
		if len(seen) != d.groups-1 {
			t.Fatalf("group %d uses %d slots, want %d", g, len(seen), d.groups-1)
		}
	}
}

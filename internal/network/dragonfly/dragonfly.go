// Package dragonfly implements the technology-driven Dragonfly topology:
// groups of `a` routers, all-to-all connected inside each group by local
// channels, with `h` global channels per router connecting the groups
// all-to-all. Routing options are minimal (local-global-local), oblivious
// Valiant over a random intermediate group, and UGAL.
package dragonfly

import (
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/network"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

func init() {
	network.Registry.Register("dragonfly", func(s *sim.Simulator, cfg *config.Settings) network.Network {
		return New(s, cfg)
	})
}

const (
	algMinimal = iota
	algValiant
	algUGAL
)

// Dragonfly is the topology component. The balanced configuration has
// groups = a*h + 1 so that every group pair is connected by exactly one
// global channel.
//
// Port layout per router: [0, p) terminals, [p, p+a-1) local channels
// (offset o reaches router (r+o) mod a of the group), then h global ports.
type Dragonfly struct {
	network.Base
	p, a, h int
	groups  int
	vcs     int
	alg     int
	thresh  float64
}

// New builds a dragonfly from the network settings block.
func New(s *sim.Simulator, cfg *config.Settings) *Dragonfly {
	d := &Dragonfly{Base: network.NewBase(s, cfg)}
	d.p = int(cfg.UInt("concentration"))
	d.a = int(cfg.UInt("group_size"))
	d.h = int(cfg.UInt("global_links"))
	if d.p < 1 || d.a < 2 || d.h < 1 {
		panic("dragonfly: need concentration >= 1, group_size >= 2, global_links >= 1")
	}
	d.groups = d.a*d.h + 1
	d.vcs = int(cfg.UIntOr("router.num_vcs", 2))
	switch a := cfg.StringOr("routing.algorithm", "minimal"); a {
	case "minimal":
		d.alg = algMinimal
	case "valiant":
		d.alg = algValiant
	case "ugal":
		d.alg = algUGAL
	default:
		panic("dragonfly: unknown routing algorithm " + a)
	}
	need := 2
	if d.alg != algMinimal {
		need = 3
	}
	if d.vcs < need {
		panic("dragonfly: this routing algorithm requires more VCs")
	}
	d.thresh = cfg.FloatOr("routing.ugal_bias", 0)

	numRouters := d.groups * d.a
	radix := d.p + (d.a - 1) + d.h
	rc := func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return &dfAlg{d: d, router: routerID, sensor: sensor, rng: rng}
	}
	for id := 0; id < numRouters; id++ {
		d.BuildRouter(id, radix, rc)
	}
	// Local all-to-all within each group.
	for g := 0; g < d.groups; g++ {
		for r := 0; r < d.a; r++ {
			for o := 1; o < d.a; o++ {
				src := g*d.a + r
				dst := g*d.a + (r+o)%d.a
				d.Link(d.Routers[src], d.localPort(o), d.Routers[dst], d.localPort(d.a-o))
			}
		}
	}
	// Global all-to-all between groups: slot l of group g (router l/h,
	// global port l%h) connects to group l (or l+1 past itself).
	for g := 0; g < d.groups; g++ {
		for l := 0; l < d.a*d.h; l++ {
			tg := l
			if tg >= g {
				tg++
			}
			if tg < g {
				continue // wired when visiting the smaller group id
			}
			back := g // g's slot in tg's numbering: tg > g so slot is g
			sr := g*d.a + l/d.h
			tr := tg*d.a + back/d.h
			d.LinkBidir(d.Routers[sr], d.globalPort(l%d.h), d.Routers[tr], d.globalPort(back%d.h))
		}
	}
	policy := func(pkt *types.Packet) []int { return []int{0} }
	for t := 0; t < numRouters*d.p; t++ {
		ifc := d.BuildInterface(t, d.vcs, policy)
		d.AttachTerminal(ifc, d.Routers[t/d.p], t%d.p)
	}
	return d
}

func (d *Dragonfly) localPort(o int) int  { return d.p + o - 1 }
func (d *Dragonfly) globalPort(j int) int { return d.p + d.a - 1 + j }

// NumGroups implements network.Grouped: the parallel partitioner splits a
// dragonfly along group boundaries, since all-to-all local links stay inside
// a group and only the sparse global links cross shards.
func (d *Dragonfly) NumGroups() int { return d.groups }

// RouterGroup implements network.Grouped.
func (d *Dragonfly) RouterGroup(i int) int { return i / d.a }

// globalOwner returns the router index (within group g) and global port that
// hold group g's link to group tg.
func (d *Dragonfly) globalOwner(g, tg int) (router, port int) {
	slot := tg
	if slot > g {
		slot--
	}
	return slot / d.h, slot % d.h
}

// dfAlg implements minimal / Valiant / UGAL dragonfly routing with the
// standard ascending VC classes: local hops use VC 0 in the source group,
// VC 1 in an intermediate group and the last class in the destination group;
// global hops use VC 0 (first) and VC 1 (second).
type dfAlg struct {
	d      *Dragonfly
	router int
	sensor congestion.Sensor
	rng    *rand.Rand
}

// Route implements routing.Algorithm.
func (a *dfAlg) Route(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
	d := a.d
	g := a.router / d.a
	dst := pkt.Msg.Dst
	dstR := dst / d.p
	dg := dstR / d.a

	// The routing scratch's Dateline flag tracks a non-minimal packet's
	// progress past its intermediate group; Valid marks the source decision
	// as taken.
	st := &pkt.Routing
	if d.alg != algMinimal && pkt.HopCount == 0 && !pkt.NonMinimal && !st.Valid {
		a.sourceDecision(now, pkt, g, dg, dstR)
	}
	st.Valid = true
	if pkt.NonMinimal && !st.Dateline && (g == pkt.Intermediate || g == dg) {
		st.Dateline = true
	}
	if g == dg {
		lastLocal := 1
		if pkt.NonMinimal {
			lastLocal = 2
		}
		if a.router == dstR {
			all := make([]int, d.vcs)
			for i := range all {
				all[i] = i
			}
			return routing.Response{Port: dst % d.p, VCs: all}
		}
		o := ((dstR-a.router)%d.a + d.a) % d.a
		return routing.Response{Port: d.localPort(o), VCs: []int{lastLocal}}
	}
	tg := dg
	if pkt.NonMinimal && !st.Dateline {
		tg = pkt.Intermediate
	}
	ro, gp := d.globalOwner(g, tg)
	class := 0
	if pkt.NonMinimal && st.Dateline {
		class = 1
	}
	if a.router%d.a == ro {
		return routing.Response{Port: d.globalPort(gp), VCs: []int{class}}
	}
	o := ((ro-a.router%d.a)%d.a + d.a) % d.a
	return routing.Response{Port: d.localPort(o), VCs: []int{class}}
}

// hops counts the minimal path length from router r to router dstR.
func (a *dfAlg) hops(r, dstR int) int {
	d := a.d
	g, dg := r/d.a, dstR/d.a
	if g == dg {
		if r == dstR {
			return 0
		}
		return 1
	}
	n := 1 // the global hop
	ro, _ := d.globalOwner(g, dg)
	if r%d.a != ro {
		n++
	}
	back, _ := d.globalOwner(dg, g)
	if dg*d.a+back != dstR {
		n++
	}
	return n
}

func (a *dfAlg) sourceDecision(now sim.Tick, pkt *types.Packet, g, dg, dstR int) {
	d := a.d
	if g == dg || d.groups <= 2 {
		return
	}
	ig := a.rng.IntN(d.groups)
	for ig == g || ig == dg {
		ig = a.rng.IntN(d.groups)
	}
	if d.alg == algValiant {
		pkt.Intermediate = ig
		pkt.NonMinimal = true
		return
	}
	firstPort := func(tg int) int {
		ro, gp := d.globalOwner(g, tg)
		if a.router%d.a == ro {
			return d.globalPort(gp)
		}
		o := ((ro-a.router%d.a)%d.a + d.a) % d.a
		return d.localPort(o)
	}
	qMin := a.sensor.Congestion(now, firstPort(dg), 0)
	qNon := a.sensor.Congestion(now, firstPort(ig), 0)
	hMin := float64(a.hops(a.router, dstR))
	// Entry router of the intermediate group, then on to the destination.
	back, _ := d.globalOwner(ig, g)
	entry := ig*d.a + back
	hNon := float64(a.hops(a.router, entry) + a.hops(entry, dstR))
	if hMin*qMin > hNon*(qNon+d.thresh) {
		pkt.Intermediate = ig
		pkt.NonMinimal = true
	}
}

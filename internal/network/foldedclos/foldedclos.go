// Package foldedclos implements the folded-Clos (k-ary n-tree / fat-tree)
// topology with adaptive uprouting: on the way up, each packet chooses the
// least congested up port (per the router's congestion sensor); once its
// subtree contains the destination, the down path is deterministic.
package foldedclos

import (
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/network"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

func init() {
	network.Registry.Register("folded_clos", func(s *sim.Simulator, cfg *config.Settings) network.Network {
		return New(s, cfg)
	})
}

// FoldedClos is a k-ary n-tree: levels 0..n-1, k^n terminals. Routers at
// levels 0..n-2 have k down ports (0..k-1) and k up ports (k..2k-1); root
// routers (level n-1) have k down ports only.
//
// Router addressing follows the classic digit scheme: a router at level l is
// identified by n-1 base-k digits w[n-2..0]. Up port u of router (l, w)
// connects to router (l+1, w') where w' is w with digit l replaced by u,
// arriving on down port w[l].
type FoldedClos struct {
	network.Base
	k      int // half radix: down (and up) ports per router
	levels int
	vcs    int
	perLvl int // routers per level = k^(n-1)
	adapt  bool
}

// New builds a folded-Clos from the network settings block.
func New(s *sim.Simulator, cfg *config.Settings) *FoldedClos {
	f := &FoldedClos{Base: network.NewBase(s, cfg)}
	f.k = int(cfg.UInt("half_radix"))
	f.levels = int(cfg.UInt("levels"))
	if f.k < 2 {
		panic("foldedclos: half_radix must be at least 2")
	}
	if f.levels < 2 {
		panic("foldedclos: at least 2 levels required")
	}
	f.vcs = int(cfg.UIntOr("router.num_vcs", 1))
	switch alg := cfg.StringOr("routing.algorithm", "adaptive_uprouting"); alg {
	case "adaptive_uprouting":
		f.adapt = true
	case "oblivious_uprouting":
		f.adapt = false
	default:
		panic("foldedclos: unknown routing algorithm " + alg)
	}

	f.perLvl = 1
	for i := 0; i < f.levels-1; i++ {
		f.perLvl *= f.k
	}
	all := make([]int, f.vcs)
	for i := range all {
		all[i] = i
	}
	rc := func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return &upAlg{f: f, router: routerID, sensor: sensor, rng: rng, all: all}
	}
	// Routers level by level; id = level*perLvl + index(w).
	for lvl := 0; lvl < f.levels; lvl++ {
		radix := 2 * f.k
		if lvl == f.levels-1 {
			radix = f.k // roots: all ports face down
		}
		for w := 0; w < f.perLvl; w++ {
			f.BuildRouter(lvl*f.perLvl+w, radix, rc)
		}
	}
	// Up links: router (l, w) up port k+u <-> router (l+1, replace(w,l,u))
	// down port digit(w, l).
	for lvl := 0; lvl < f.levels-1; lvl++ {
		for w := 0; w < f.perLvl; w++ {
			lower := f.Routers[lvl*f.perLvl+w]
			for u := 0; u < f.k; u++ {
				upperW := f.replaceDigit(w, lvl, u)
				upper := f.Routers[(lvl+1)*f.perLvl+upperW]
				f.LinkBidir(lower, f.k+u, upper, f.digit(w, lvl))
			}
		}
	}
	// Terminals: terminal t attaches to leaf router w = t/k, down port t%k.
	policy := func(pkt *types.Packet) []int { return all }
	numTerms := f.perLvl * f.k
	for t := 0; t < numTerms; t++ {
		ifc := f.BuildInterface(t, f.vcs, policy)
		f.AttachTerminal(ifc, f.Routers[t/f.k], t%f.k)
	}
	return f
}

// digit extracts base-k digit position d of index w (0 = least significant).
func (f *FoldedClos) digit(w, d int) int {
	for i := 0; i < d; i++ {
		w /= f.k
	}
	return w % f.k
}

// replaceDigit returns w with base-k digit position d replaced by v.
func (f *FoldedClos) replaceDigit(w, d, v int) int {
	stride := 1
	for i := 0; i < d; i++ {
		stride *= f.k
	}
	return w + (v-f.digit(w, d))*stride
}

// level and index decompose a router id.
func (f *FoldedClos) level(rid int) int { return rid / f.perLvl }
func (f *FoldedClos) index(rid int) int { return rid % f.perLvl }

// covers reports whether the subtree of router (lvl, w) contains terminal t:
// every terminal digit above position lvl must match the router digit one
// place below it.
func (f *FoldedClos) covers(lvl, w, t int) bool {
	tr := t / f.k // terminal digits t[n-1..1] as an index, aligned with w
	for j := lvl; j < f.levels-1; j++ {
		if f.digit(tr, j) != f.digit(w, j) {
			return false
		}
	}
	return true
}

// upAlg routes up adaptively (or obliviously) until the current router's
// subtree covers the destination, then down deterministically by destination
// digits.
type upAlg struct {
	f      *FoldedClos
	router int
	sensor congestion.Sensor
	rng    *rand.Rand
	all    []int
}

// Route implements routing.Algorithm.
func (a *upAlg) Route(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
	f := a.f
	lvl, w := f.level(a.router), f.index(a.router)
	dst := pkt.Msg.Dst
	if f.covers(lvl, w, dst) {
		// Down: the child covering dst is selected by the terminal digit at
		// this level; at the leaf that digit is the terminal port.
		return routing.Response{Port: f.digit(dst, lvl), VCs: a.all}
	}
	// Up: choose among the k up ports.
	if !a.f.adapt {
		return routing.Response{Port: f.k + a.rng.IntN(f.k), VCs: a.all}
	}
	cands := make([]routing.Candidate, f.k)
	for u := 0; u < f.k; u++ {
		cands[u] = routing.Candidate{Port: f.k + u, VC: 0}
	}
	best := routing.LeastCongested(now, a.sensor, a.rng, cands)
	return routing.Response{Port: best.Port, VCs: a.all}
}

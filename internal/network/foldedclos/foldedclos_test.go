package foldedclos

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

func build(t *testing.T, k, levels int) *FoldedClos {
	t.Helper()
	s := sim.NewSimulator(1)
	cfg := config.MustParse(`{
	  "topology": "folded_clos",
	  "half_radix": ` + itoa(k) + `,
	  "levels": ` + itoa(levels) + `,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`)
	return New(s, cfg)
}

func itoa(v int) string {
	return string(rune('0' + v))
}

func TestShapeCounts(t *testing.T) {
	f := build(t, 4, 3)
	// 4^3 = 64 terminals; 3 levels x 4^2 = 48 routers.
	if f.NumTerminals() != 64 {
		t.Fatalf("terminals = %d", f.NumTerminals())
	}
	if f.NumRouters() != 48 {
		t.Fatalf("routers = %d", f.NumRouters())
	}
	// Leaf and mid routers radix 8; roots radix 4.
	if f.Router(0).Radix() != 8 {
		t.Fatalf("leaf radix %d", f.Router(0).Radix())
	}
	if f.Router(2*16).Radix() != 4 {
		t.Fatalf("root radix %d", f.Router(32).Radix())
	}
}

func TestDigitHelpers(t *testing.T) {
	f := build(t, 4, 3)
	// w = 0b 23 in base 4: digits (2, 3) -> w = 2*4+3 = 11
	if f.digit(11, 0) != 3 || f.digit(11, 1) != 2 {
		t.Fatal("digit extraction wrong")
	}
	if f.replaceDigit(11, 0, 1) != 9 { // (2,1)
		t.Fatalf("replaceDigit low = %d", f.replaceDigit(11, 0, 1))
	}
	if f.replaceDigit(11, 1, 0) != 3 { // (0,3)
		t.Fatalf("replaceDigit high = %d", f.replaceDigit(11, 1, 0))
	}
}

func TestCoversSubtrees(t *testing.T) {
	f := build(t, 4, 3)
	// Leaf router w covers exactly terminals [w*k, w*k+k).
	for w := 0; w < f.perLvl; w += 5 {
		for term := 0; term < 64; term++ {
			want := term/4 == w
			if got := f.covers(0, w, term); got != want {
				t.Fatalf("covers(0, %d, %d) = %v, want %v", w, term, got, want)
			}
		}
	}
	// Level-1 router (x1, x0) covers terminals with top digit == x1.
	for w := 0; w < f.perLvl; w++ {
		x1 := f.digit(w, 1)
		for term := 0; term < 64; term++ {
			want := term/16 == x1
			if got := f.covers(1, w, term); got != want {
				t.Fatalf("covers(1, %d, %d) = %v, want %v", w, term, got, want)
			}
		}
	}
	// Roots cover everything.
	for w := 0; w < f.perLvl; w++ {
		for term := 0; term < 64; term += 7 {
			if !f.covers(2, w, term) {
				t.Fatal("root must cover all terminals")
			}
		}
	}
}

func TestLevelIndexDecomposition(t *testing.T) {
	f := build(t, 4, 3)
	for rid := 0; rid < f.NumRouters(); rid++ {
		lvl, idx := f.level(rid), f.index(rid)
		if lvl*f.perLvl+idx != rid {
			t.Fatalf("decomposition of %d wrong", rid)
		}
		if lvl < 0 || lvl > 2 || idx < 0 || idx >= 16 {
			t.Fatalf("rid %d -> (%d, %d)", rid, lvl, idx)
		}
	}
}

package parkinglot

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

func TestShape(t *testing.T) {
	p := New(sim.NewSimulator(1), config.MustParse(`{
	  "topology": "parking_lot",
	  "routers": 4,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`))
	if p.NumRouters() != 4 || p.NumTerminals() != 4 {
		t.Fatalf("routers=%d terminals=%d", p.NumRouters(), p.NumTerminals())
	}
	if p.Router(0).Radix() != 3 {
		t.Fatalf("radix = %d", p.Router(0).Radix())
	}
	// channels: 3 links x2 + 4 terminals x2 = 14
	if len(p.Channels()) != 14 {
		t.Fatalf("channels = %d", len(p.Channels()))
	}
}

func TestRejectsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewSimulator(1), config.MustParse(`{
	  "topology": "parking_lot",
	  "routers": 1,
	  "channel": {"latency": 2, "period": 1},
	  "router": {}
	}`))
}

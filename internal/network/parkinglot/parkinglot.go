// Package parkinglot implements the linear-chain stress topology that
// creates the parking lot problem: terminals along a chain all sending
// toward one end merge at every router, so round-robin arbitration gives
// exponentially less bandwidth to farther terminals. Age-based arbitration
// is known to fix this unfairness, and the topology exists to demonstrate
// exactly that (configure router.crossbar_policy accordingly).
package parkinglot

import (
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/network"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

func init() {
	network.Registry.Register("parking_lot", func(s *sim.Simulator, cfg *config.Settings) network.Network {
		return New(s, cfg)
	})
}

// ParkingLot is a linear array of routers, one terminal each. Ports:
// 0 terminal, 1 toward lower indices, 2 toward higher indices.
type ParkingLot struct {
	network.Base
	n   int
	vcs int
}

// New builds a parking lot chain from the network settings block.
func New(s *sim.Simulator, cfg *config.Settings) *ParkingLot {
	p := &ParkingLot{Base: network.NewBase(s, cfg)}
	p.n = int(cfg.UInt("routers"))
	if p.n < 2 {
		panic("parkinglot: at least 2 routers required")
	}
	p.vcs = int(cfg.UIntOr("router.num_vcs", 1))

	all := make([]int, p.vcs)
	for i := range all {
		all[i] = i
	}
	rc := func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return routing.AlgorithmFunc(func(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
			dst := pkt.Msg.Dst
			switch {
			case dst < routerID:
				return routing.Response{Port: 1, VCs: all}
			case dst > routerID:
				return routing.Response{Port: 2, VCs: all}
			default:
				return routing.Response{Port: 0, VCs: all}
			}
		})
	}
	for id := 0; id < p.n; id++ {
		p.BuildRouter(id, 3, rc)
	}
	for id := 0; id+1 < p.n; id++ {
		p.LinkBidir(p.Routers[id], 2, p.Routers[id+1], 1)
	}
	policy := func(pkt *types.Packet) []int { return all }
	for t := 0; t < p.n; t++ {
		ifc := p.BuildInterface(t, p.vcs, policy)
		p.AttachTerminal(ifc, p.Routers[t], 0)
	}
	return p
}

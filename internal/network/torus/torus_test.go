package torus

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

func build(t *testing.T, doc string) *Torus {
	t.Helper()
	return New(sim.NewSimulator(1), config.MustParse(doc))
}

const t3x4 = `{
  "topology": "torus",
  "dimensions": [3, 4],
  "concentration": 2,
  "channel": {"latency": 2, "period": 1},
  "injection": {"latency": 1},
  "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 4, "crossbar_latency": 1}
}`

func TestShape(t *testing.T) {
	tor := build(t, t3x4)
	if tor.NumRouters() != 12 || tor.NumTerminals() != 24 {
		t.Fatalf("routers=%d terminals=%d", tor.NumRouters(), tor.NumTerminals())
	}
	// radix: 2 terminals + 2 ports per dimension x 2 dims = 6
	if tor.Router(0).Radix() != 6 {
		t.Fatalf("radix = %d", tor.Router(0).Radix())
	}
}

func TestCoordAndNeighbor(t *testing.T) {
	tor := build(t, t3x4)
	// router id = x + 3*y for dims [3,4]
	rid := 2 + 3*1 // (x=2, y=1)
	if tor.coord(rid, 0) != 2 || tor.coord(rid, 1) != 1 {
		t.Fatal("coord extraction wrong")
	}
	// +1 in dim 0 wraps x: (0,1) = 3
	if nb := tor.neighbor(rid, 0, +1); nb != 3 {
		t.Fatalf("neighbor x+ = %d", nb)
	}
	if nb := tor.neighbor(rid, 0, -1); nb != 1+3*1 {
		t.Fatalf("neighbor x- = %d", nb)
	}
	// -1 in dim 1 from y=1: (2,0) = 2
	if nb := tor.neighbor(rid, 1, -1); nb != 2 {
		t.Fatalf("neighbor y- = %d", nb)
	}
	// wrap: (2,0) - 1 in dim 1 -> (2,3)
	if nb := tor.neighbor(2, 1, -1); nb != 2+3*3 {
		t.Fatalf("neighbor wrap = %d", nb)
	}
}

func TestPortLayout(t *testing.T) {
	tor := build(t, t3x4)
	if tor.portPlus(0) != 2 || tor.portMinus(0) != 3 ||
		tor.portPlus(1) != 4 || tor.portMinus(1) != 5 {
		t.Fatal("port layout wrong")
	}
}

// Package torus implements the k-ary n-cube (Torus) topology with
// dimension-order routing and dateline virtual channel deadlock avoidance.
package torus

import (
	"fmt"
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/network"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

func init() {
	network.Registry.Register("torus", func(s *sim.Simulator, cfg *config.Settings) network.Network {
		return New(s, cfg)
	})
}

// Torus is an n-dimensional torus: widths[d] routers per dimension, each
// with `concentration` terminals and bidirectional links to both ring
// neighbors in every dimension.
//
// Port layout per router: [0, conc) terminals, then for each dimension d the
// plus-direction port conc+2d and the minus-direction port conc+2d+1.
type Torus struct {
	network.Base
	widths []int
	conc   int
	vcs    int
}

// New builds a torus from the network settings block.
func New(s *sim.Simulator, cfg *config.Settings) *Torus {
	t := &Torus{Base: network.NewBase(s, cfg)}
	for _, w := range cfg.UIntList("dimensions") {
		if w < 2 {
			panic("torus: each dimension width must be at least 2")
		}
		t.widths = append(t.widths, int(w))
	}
	if len(t.widths) == 0 {
		panic("torus: at least one dimension required")
	}
	t.conc = int(cfg.UIntOr("concentration", 1))
	if t.conc < 1 {
		panic("torus: concentration must be positive")
	}
	t.vcs = int(cfg.UInt("router.num_vcs"))
	if t.vcs < 2 || t.vcs%2 != 0 {
		panic("torus: dimension order routing requires an even num_vcs >= 2 (dateline classes)")
	}
	alg := cfg.StringOr("routing.algorithm", "dimension_order")
	if alg != "dimension_order" {
		panic("torus: unknown routing algorithm " + alg)
	}

	numRouters := 1
	for _, w := range t.widths {
		numRouters *= w
	}
	radix := t.conc + 2*len(t.widths)

	half := t.vcs / 2
	class0 := make([]int, half)
	class1 := make([]int, half)
	all := make([]int, t.vcs)
	for i := 0; i < half; i++ {
		class0[i] = i
		class1[i] = half + i
	}
	for i := range all {
		all[i] = i
	}
	rc := func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return &dorAlg{t: t, router: routerID, class0: class0, class1: class1, all: all}
	}
	for id := 0; id < numRouters; id++ {
		t.BuildRouter(id, radix, rc)
	}
	// Inter-router links: one bidirectional pair per dimension per router
	// toward the plus neighbor.
	for id := 0; id < numRouters; id++ {
		for d := range t.widths {
			nb := t.neighbor(id, d, +1)
			t.LinkBidir(t.Routers[id], t.portPlus(d), t.Routers[nb], t.portMinus(d))
		}
	}
	// Terminals: packets inject on dateline class 0.
	policy := func(pkt *types.Packet) []int { return class0 }
	for term := 0; term < numRouters*t.conc; term++ {
		ifc := t.BuildInterface(term, t.vcs, policy)
		t.AttachTerminal(ifc, t.Routers[term/t.conc], term%t.conc)
	}
	return t
}

func (t *Torus) portPlus(d int) int  { return t.conc + 2*d }
func (t *Torus) portMinus(d int) int { return t.conc + 2*d + 1 }

// coord extracts dimension d's coordinate of a router id (dimension 0 is the
// least significant).
func (t *Torus) coord(rid, d int) int {
	for i := 0; i < d; i++ {
		rid /= t.widths[i]
	}
	return rid % t.widths[d]
}

// neighbor returns the router one step in direction dir (+1/-1) along d.
func (t *Torus) neighbor(rid, d, dir int) int {
	stride := 1
	for i := 0; i < d; i++ {
		stride *= t.widths[i]
	}
	w := t.widths[d]
	c := t.coord(rid, d)
	nc := ((c+dir)%w + w) % w
	return rid + (nc-c)*stride
}

// dorAlg is deterministic dimension-order routing with dateline VC classes:
// packets travel dimensions in ascending order, take the shortest ring
// direction, and move to the upper half of the VCs after crossing a ring's
// dateline.
type dorAlg struct {
	t              *Torus
	router         int
	class0, class1 []int
	all            []int
}

// Route implements routing.Algorithm.
func (a *dorAlg) Route(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
	t := a.t
	dst := pkt.Msg.Dst
	dstR := dst / t.conc
	if a.router == dstR {
		return routing.Response{Port: dst % t.conc, VCs: a.all}
	}
	for d := 0; d < len(t.widths); d++ {
		cc, dc := t.coord(a.router, d), t.coord(dstR, d)
		if cc == dc {
			continue
		}
		w := t.widths[d]
		plusDist := ((dc-cc)%w + w) % w
		dir := +1
		if plusDist > w-plusDist {
			dir = -1
		}
		wraps := (dir == +1 && cc == w-1) || (dir == -1 && cc == 0)
		// The routing scratch tracks the current dimension (Phase) and its
		// dateline-crossed flag; entering a new dimension resets the flag.
		st := &pkt.Routing
		if !st.Valid || int(st.Phase) != d {
			*st = types.RoutingScratch{Valid: true, Phase: int8(d)}
		}
		vcs := a.class0
		if st.Dateline || wraps {
			vcs = a.class1
		}
		if wraps {
			st.Dateline = true
		}
		port := t.portPlus(d)
		if dir == -1 {
			port = t.portMinus(d)
		}
		return routing.Response{Port: port, VCs: vcs}
	}
	panic(fmt.Sprintf("torus: packet %v routed at its destination router", pkt))
}

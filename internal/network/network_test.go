package network_test

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/network"
	_ "supersim/internal/network/parkinglot"
	_ "supersim/internal/network/torus"
	"supersim/internal/sim"
)

func netCfg(doc string) *config.Settings { return config.MustParse(doc) }

func TestRegistryLookup(t *testing.T) {
	s := sim.NewSimulator(1)
	net := network.New(s, netCfg(`{
	  "topology": "parking_lot",
	  "routers": 3,
	  "channel": {"latency": 2, "period": 1},
	  "injection": {"latency": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 1, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`))
	if net.NumRouters() != 3 || net.NumTerminals() != 3 {
		t.Fatalf("routers=%d terminals=%d", net.NumRouters(), net.NumTerminals())
	}
	// 2 inter-router links x2 directions + 3 terminals x2 directions = 10
	if len(net.Channels()) != 10 {
		t.Fatalf("channels = %d", len(net.Channels()))
	}
	if net.ChannelPeriod() != 1 {
		t.Fatalf("period = %d", net.ChannelPeriod())
	}
	for i := 0; i < 3; i++ {
		if net.Router(i).ID() != i {
			t.Fatalf("router %d id %d", i, net.Router(i).ID())
		}
		if net.Interface(i).ID() != i {
			t.Fatalf("interface %d id %d", i, net.Interface(i).ID())
		}
	}
}

func TestUnknownTopologyPanics(t *testing.T) {
	s := sim.NewSimulator(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	network.New(s, netCfg(`{"topology": "unobtainium"}`))
}

func TestBaseValidation(t *testing.T) {
	s := sim.NewSimulator(1)
	bad := []string{
		`{"channel": {"latency": 0, "period": 1}}`,
		`{"channel": {"latency": 1, "period": 0}}`,
		`{"injection": {"latency": 0}}`,
		`{"interface": {"receive_buffer_depth": 0}}`,
	}
	for _, doc := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBase should reject %s", doc)
				}
			}()
			network.NewBase(s, netCfg(doc))
		}()
	}
}

func TestBuildOrderEnforced(t *testing.T) {
	s := sim.NewSimulator(1)
	b := network.NewBase(s, netCfg(`{
	  "channel": {"latency": 1, "period": 1},
	  "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 4, "crossbar_latency": 1}
	}`))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order BuildRouter must panic")
		}
	}()
	b.BuildRouter(1, 3, nil) // id 1 before id 0
}

func TestDeterministicConstruction(t *testing.T) {
	// Building the same topology twice yields identical shapes.
	build := func() (int, int, int) {
		s := sim.NewSimulator(1)
		net := network.New(s, netCfg(`{
		  "topology": "torus",
		  "dimensions": [3, 3],
		  "concentration": 2,
		  "channel": {"latency": 2, "period": 1},
		  "injection": {"latency": 1},
		  "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 4, "crossbar_latency": 1}
		}`))
		return net.NumRouters(), net.NumTerminals(), len(net.Channels())
	}
	r1, t1, c1 := build()
	r2, t2, c2 := build()
	if r1 != r2 || t1 != t2 || c1 != c2 {
		t.Fatal("construction not deterministic")
	}
	if r1 != 9 || t1 != 18 {
		t.Fatalf("torus 3x3 conc 2: routers=%d terminals=%d", r1, t1)
	}
	// channels: routers 9 * dims 2 * bidir 2 + terminals 18 * 2 = 72
	if c1 != 72 {
		t.Fatalf("channels = %d", c1)
	}
}

// Package hyperx implements the HyperX topology: L dimensions with S_l
// routers per dimension, all-to-all connected within each dimension, and T
// terminals per router. HyperX configurations subsume the HyperCube (S_l=2)
// and the Flattened Butterfly. Routing options are minimal dimension-order,
// oblivious Valiant, and UGAL (Universal Globally-Adaptive Load-balancing),
// which compares the sensed congestion of the minimal path against a random
// non-minimal (Valiant) path weighted by hop count.
package hyperx

import (
	"math/rand/v2"

	"supersim/internal/config"
	"supersim/internal/congestion"
	"supersim/internal/network"
	"supersim/internal/routing"
	"supersim/internal/sim"
	"supersim/internal/types"
)

func init() {
	network.Registry.Register("hyperx", func(s *sim.Simulator, cfg *config.Settings) network.Network {
		return New(s, cfg)
	})
}

// routing algorithm selector
const (
	algMinimal = iota
	algValiant
	algUGAL
)

// HyperX is the topology component.
//
// Port layout per router: [0, conc) terminals, then for each dimension d the
// S_d - 1 ports to the other routers of that dimension: port base_d + (o-1)
// reaches the router whose coordinate is (c + o) mod S_d.
type HyperX struct {
	network.Base
	widths []int
	conc   int
	vcs    int
	alg    int
	thresh float64 // UGAL bias added to the non-minimal estimate
}

// New builds a HyperX from the network settings block.
func New(s *sim.Simulator, cfg *config.Settings) *HyperX {
	h := &HyperX{Base: network.NewBase(s, cfg)}
	for _, w := range cfg.UIntList("widths") {
		if w < 2 {
			panic("hyperx: each dimension width must be at least 2")
		}
		h.widths = append(h.widths, int(w))
	}
	if len(h.widths) == 0 {
		panic("hyperx: at least one dimension required")
	}
	h.conc = int(cfg.UIntOr("concentration", 1))
	if h.conc < 1 {
		panic("hyperx: concentration must be positive")
	}
	h.vcs = int(cfg.UIntOr("router.num_vcs", 1))
	switch a := cfg.StringOr("routing.algorithm", "dimension_order"); a {
	case "dimension_order":
		h.alg = algMinimal
	case "valiant":
		h.alg = algValiant
	case "ugal":
		h.alg = algUGAL
	default:
		panic("hyperx: unknown routing algorithm " + a)
	}
	if h.alg != algMinimal && h.vcs < 2 {
		panic("hyperx: valiant/ugal routing requires num_vcs >= 2 (one per phase)")
	}
	h.thresh = cfg.FloatOr("routing.ugal_bias", 0)

	numRouters := 1
	for _, w := range h.widths {
		numRouters *= w
	}
	radix := h.conc
	for _, w := range h.widths {
		radix += w - 1
	}

	phase0 := []int{0}
	phase1 := []int{1}
	all := make([]int, h.vcs)
	for i := range all {
		all[i] = i
	}
	rc := func(routerID, inputPort int, sensor congestion.Sensor, rng *rand.Rand) routing.Algorithm {
		return &hxAlg{h: h, router: routerID, sensor: sensor, rng: rng,
			phase0: phase0, phase1: phase1, all: all}
	}
	for id := 0; id < numRouters; id++ {
		h.BuildRouter(id, radix, rc)
	}
	// All-to-all links within each dimension (each direction is a distinct
	// port, so Link rather than LinkBidir; the o and S-o offsets pair up).
	for id := 0; id < numRouters; id++ {
		for d := range h.widths {
			for o := 1; o < h.widths[d]; o++ {
				nb := h.neighbor(id, d, o)
				h.Link(h.Routers[id], h.offsetPort(d, o), h.Routers[nb], h.offsetPort(d, h.widths[d]-o))
			}
		}
	}
	policy := func(pkt *types.Packet) []int {
		if h.alg == algMinimal {
			return all
		}
		return phase0
	}
	for t := 0; t < numRouters*h.conc; t++ {
		ifc := h.BuildInterface(t, h.vcs, policy)
		h.AttachTerminal(ifc, h.Routers[t/h.conc], t%h.conc)
	}
	return h
}

// offsetPort returns the port for offset o (1..S_d-1) in dimension d.
func (h *HyperX) offsetPort(d, o int) int {
	base := h.conc
	for i := 0; i < d; i++ {
		base += h.widths[i] - 1
	}
	return base + o - 1
}

func (h *HyperX) coord(rid, d int) int {
	for i := 0; i < d; i++ {
		rid /= h.widths[i]
	}
	return rid % h.widths[d]
}

// neighbor returns the router at coordinate offset o in dimension d.
func (h *HyperX) neighbor(rid, d, o int) int {
	stride := 1
	for i := 0; i < d; i++ {
		stride *= h.widths[i]
	}
	w := h.widths[d]
	c := h.coord(rid, d)
	nc := (c + o) % w
	return rid + (nc-c)*stride
}

// minimalPort returns the port toward dst along the first differing
// dimension, or -1 when rid is dst's router.
func (h *HyperX) minimalPort(rid, dstRouter int) int {
	for d := range h.widths {
		cc, dc := h.coord(rid, d), h.coord(dstRouter, d)
		if cc != dc {
			o := ((dc-cc)%h.widths[d] + h.widths[d]) % h.widths[d]
			return h.offsetPort(d, o)
		}
	}
	return -1
}

// minimalHops counts the remaining minimal hops between routers.
func (h *HyperX) minimalHops(rid, dstRouter int) int {
	hops := 0
	for d := range h.widths {
		if h.coord(rid, d) != h.coord(dstRouter, d) {
			hops++
		}
	}
	return hops
}

// hxAlg routes minimally per dimension; with Valiant or UGAL a packet may
// first visit a random intermediate router (phase 0, VC 0) before heading to
// its destination (phase 1, VC 1), the classic two-phase discipline that
// keeps non-minimal routing deadlock free.
type hxAlg struct {
	h      *HyperX
	router int
	sensor congestion.Sensor
	rng    *rand.Rand
	phase0 []int
	phase1 []int
	all    []int
}

// Route implements routing.Algorithm.
func (a *hxAlg) Route(now sim.Tick, pkt *types.Packet, inPort, inVC int) routing.Response {
	h := a.h
	dst := pkt.Msg.Dst
	dstR := dst / h.conc
	// Source decision for non-minimal algorithms: made once, at injection.
	if h.alg != algMinimal && pkt.HopCount == 0 && pkt.Intermediate < 0 && !pkt.NonMinimal {
		a.sourceDecision(now, pkt, dstR)
	}
	// Phase 0: toward the intermediate router.
	if pkt.Intermediate >= 0 && a.router != pkt.Intermediate {
		return routing.Response{Port: h.minimalPort(a.router, pkt.Intermediate), VCs: a.phase0}
	}
	if pkt.Intermediate >= 0 && a.router == pkt.Intermediate {
		pkt.Intermediate = -1 // phase transition
	}
	if a.router == dstR {
		return routing.Response{Port: dst % h.conc, VCs: a.all}
	}
	vcs := a.phase0
	if h.alg != algMinimal {
		if pkt.NonMinimal {
			vcs = a.phase1
		}
	}
	return routing.Response{Port: h.minimalPort(a.router, dstR), VCs: vcs}
}

// sourceDecision chooses minimal vs non-minimal for this packet. UGAL takes
// the non-minimal (Valiant) path when
//
//	hops_min * q_min > hops_nonmin * (q_nonmin + bias)
//
// where q is the sensed congestion of the candidate first-hop port.
func (a *hxAlg) sourceDecision(now sim.Tick, pkt *types.Packet, dstR int) {
	h := a.h
	if a.router == dstR {
		return
	}
	// Random intermediate router distinct from src and dst.
	numRouters := 1
	for _, w := range h.widths {
		numRouters *= w
	}
	if numRouters <= 2 {
		return // no usable intermediate exists; stay minimal
	}
	inter := a.rng.IntN(numRouters)
	for inter == a.router || inter == dstR {
		inter = a.rng.IntN(numRouters)
	}
	if h.alg == algValiant {
		pkt.Intermediate = inter
		pkt.NonMinimal = true
		return
	}
	minPort := h.minimalPort(a.router, dstR)
	nonPort := h.minimalPort(a.router, inter)
	qMin := a.sensor.Congestion(now, minPort, 0)
	qNon := a.sensor.Congestion(now, nonPort, 0)
	hMin := float64(h.minimalHops(a.router, dstR))
	hNon := float64(h.minimalHops(a.router, inter) + h.minimalHops(inter, dstR))
	if hMin*qMin > hNon*(qNon+a.h.thresh) {
		pkt.Intermediate = inter
		pkt.NonMinimal = true
	}
}

package hyperx

import (
	"testing"

	"supersim/internal/config"
	"supersim/internal/sim"
)

func build(t *testing.T, doc string) *HyperX {
	t.Helper()
	return New(sim.NewSimulator(1), config.MustParse(doc))
}

const h3x4 = `{
  "topology": "hyperx",
  "widths": [3, 4],
  "concentration": 2,
  "channel": {"latency": 2, "period": 1},
  "injection": {"latency": 1},
  "router": {"architecture": "input_queued", "num_vcs": 2, "input_buffer_depth": 4, "crossbar_latency": 1},
  "routing": {"algorithm": "dimension_order"}
}`

func TestShapeAndRadix(t *testing.T) {
	h := build(t, h3x4)
	if h.NumRouters() != 12 || h.NumTerminals() != 24 {
		t.Fatalf("routers=%d terminals=%d", h.NumRouters(), h.NumTerminals())
	}
	// radix = conc 2 + (3-1) + (4-1) = 7
	if h.Router(0).Radix() != 7 {
		t.Fatalf("radix = %d", h.Router(0).Radix())
	}
}

func TestOffsetPorts(t *testing.T) {
	h := build(t, h3x4)
	// dim 0 offsets 1,2 -> ports 2,3; dim 1 offsets 1..3 -> ports 4..6
	if h.offsetPort(0, 1) != 2 || h.offsetPort(0, 2) != 3 {
		t.Fatal("dim 0 ports wrong")
	}
	if h.offsetPort(1, 1) != 4 || h.offsetPort(1, 3) != 6 {
		t.Fatal("dim 1 ports wrong")
	}
}

func TestNeighborAllToAll(t *testing.T) {
	h := build(t, h3x4)
	// router (1, 2) = 1 + 3*2 = 7; offset 2 in dim 0: x=(1+2)%3=0 -> 6
	if nb := h.neighbor(7, 0, 2); nb != 6 {
		t.Fatalf("neighbor = %d", nb)
	}
	// offset 3 in dim 1: y=(2+3)%4=1 -> 1+3=4
	if nb := h.neighbor(7, 1, 3); nb != 4 {
		t.Fatalf("neighbor = %d", nb)
	}
}

func TestMinimalPortAndHops(t *testing.T) {
	h := build(t, h3x4)
	// From router 0 (0,0) to router 7 (1,2): first differing dim 0, offset 1.
	if p := h.minimalPort(0, 7); p != h.offsetPort(0, 1) {
		t.Fatalf("minimal port = %d", p)
	}
	if hops := h.minimalHops(0, 7); hops != 2 {
		t.Fatalf("hops = %d", hops)
	}
	if h.minimalPort(7, 7) != -1 || h.minimalHops(7, 7) != 0 {
		t.Fatal("self routing wrong")
	}
	// Same row: only dim 1 differs.
	if hops := h.minimalHops(0, 9); hops != 1 { // (0,0)->(0,3)
		t.Fatalf("hops = %d", hops)
	}
}

func TestLinkPairingConsistency(t *testing.T) {
	// The o and S-o offset ports must pair up: wiring uses Link (one
	// direction at a time), and every port must end up connected, which New
	// verifies implicitly by SetDownstreamCredits panicking on double set...
	// here simply assert construction succeeded with all ports wired by
	// routing a packet over every port via the registry-built network.
	h := build(t, h3x4)
	if len(h.Channels()) == 0 {
		t.Fatal("no channels built")
	}
	// channels: per router: 2 terminals x2 + (2+3) links (one direction
	// each, both directions exist across the set) => total = 12*(2*2+5) =
	// 12*9 = 108
	if len(h.Channels()) != 108 {
		t.Fatalf("channels = %d", len(h.Channels()))
	}
}

// Package network defines the abstract Network component: the owner of the
// topology and its routing algorithm. A Network instantiates Router and
// Interface components and connects them with Channel components, but does
// not define their architectures — the router microarchitecture and the
// topology with its routing algorithm are modeled independently.
//
// Concrete topologies live in sub-packages (torus, foldedclos, hyperx,
// dragonfly, parkinglot) and self-register with this package's Registry.
package network

import (
	"fmt"

	"supersim/internal/channel"
	"supersim/internal/config"
	"supersim/internal/factory"
	"supersim/internal/netiface"
	"supersim/internal/router"
	"supersim/internal/routing"
	"supersim/internal/sim"
)

// Network is the abstract topology component.
type Network interface {
	// NumTerminals returns the number of endpoint terminals.
	NumTerminals() int
	// NumRouters returns the number of routers.
	NumRouters() int
	// Router returns the i-th router.
	Router(i int) router.Router
	// Interface returns the interface serving terminal i.
	Interface(i int) *netiface.Interface
	// Channels returns all flit channels, for utilization statistics.
	Channels() []*channel.Channel
	// ChannelPeriod returns the link cycle time in ticks (one flit per
	// period per channel), the unit offered load is normalized against.
	ChannelPeriod() sim.Tick
	// Links returns every channel pair in the network with its endpoint
	// ownership, the information the parallel partitioner needs to decide
	// which shard each channel belongs to and which links cross shards.
	Links() []Link
}

// Link records one unidirectional connection: the flit channel, its paired
// credit channel, and the routers that own each end. A FromRouter/ToRouter of
// Terminal (-1) marks the interface side of an injection/ejection link.
type Link struct {
	Ch *channel.Channel
	Cr *channel.CreditChannel
	// FromRouter is the router injecting into Ch (Terminal for injection
	// links); ToRouter is the router Ch delivers into (Terminal for ejection
	// links). The credit channel runs in the opposite direction: injected at
	// ToRouter's side, delivered at FromRouter's side.
	FromRouter, ToRouter int
}

// Terminal is the Link endpoint marker for the interface (terminal) side.
const Terminal = -1

// Grouped is implemented by hierarchical topologies that have a natural
// coarse partition (e.g. dragonfly groups). The parallel partitioner prefers
// group boundaries when assigning routers to shards, because the vast
// majority of a hierarchical topology's links are intra-group.
type Grouped interface {
	// NumGroups returns the number of topology groups.
	NumGroups() int
	// RouterGroup returns the group of router i.
	RouterGroup(i int) int
}

// Ctor is the constructor signature registered by topologies. The cfg is the
// whole "network" settings block.
type Ctor func(s *sim.Simulator, cfg *config.Settings) Network

// Registry holds all topology implementations.
var Registry = factory.NewRegistry[Ctor]("network")

// New builds the topology named by cfg's "topology" setting.
func New(s *sim.Simulator, cfg *config.Settings) Network {
	return Registry.MustLookup(cfg.String("topology"))(s, cfg)
}

// Base provides the construction helpers shared by all topologies: building
// routers and interfaces from the shared settings blocks and wiring ports
// together with paired flit and credit channels.
//
//sslint:allow factoryreg — embedded construction helper, not a selectable topology
type Base struct {
	Sim *sim.Simulator
	Cfg *config.Settings

	Routers    []router.Router
	Interfaces []*netiface.Interface
	Chans      []*channel.Channel
	AllLinks   []Link

	ChanPeriod  sim.Tick // link cycle time
	ChanLatency sim.Tick // router-to-router propagation latency
	InjLatency  sim.Tick // terminal-to-router propagation latency
	EjectDepth  int      // interface receive buffer depth (credits for eject ports)
}

// NewBase parses the shared channel/interface settings of a network block.
func NewBase(s *sim.Simulator, cfg *config.Settings) Base {
	b := Base{
		Sim:         s,
		Cfg:         cfg,
		ChanPeriod:  sim.Tick(cfg.UIntOr("channel.period", 1)),
		ChanLatency: sim.Tick(cfg.UIntOr("channel.latency", 1)),
		InjLatency:  sim.Tick(cfg.UIntOr("injection.latency", 1)),
		EjectDepth:  int(cfg.UIntOr("interface.receive_buffer_depth", 64)),
	}
	if b.ChanPeriod == 0 || b.ChanLatency == 0 || b.InjLatency == 0 {
		panic("network: channel period and latencies must be positive")
	}
	if b.EjectDepth <= 0 {
		panic("network: interface.receive_buffer_depth must be positive")
	}
	return b
}

// BuildRouter constructs router id with the given radix and routing
// algorithm constructor, appending it to Routers. Routers must be built in
// id order.
func (b *Base) BuildRouter(id, radix int, rc routing.Ctor) router.Router {
	if id != len(b.Routers) {
		panic(fmt.Sprintf("network: routers must be built in order: got %d, want %d", id, len(b.Routers)))
	}
	name := fmt.Sprintf("router_%d", id)
	r := router.New(b.Sim, name, b.Cfg.Sub("router"), router.Params{
		ID:            id,
		Radix:         radix,
		RoutingCtor:   rc,
		ChannelPeriod: b.ChanPeriod,
	})
	b.Routers = append(b.Routers, r)
	return r
}

// BuildInterface constructs the interface for terminal id with the given
// injection policy, appending it to Interfaces. Interfaces must be built in
// id order.
func (b *Base) BuildInterface(id, vcs int, policy netiface.InjectionPolicy) *netiface.Interface {
	if id != len(b.Interfaces) {
		panic(fmt.Sprintf("network: interfaces must be built in order: got %d, want %d", id, len(b.Interfaces)))
	}
	name := fmt.Sprintf("interface_%d", id)
	ifc := netiface.New(b.Sim, name, id, b.Cfg.SubOr("interface"), vcs, b.ChanPeriod, policy)
	b.Interfaces = append(b.Interfaces, ifc)
	return ifc
}

// Link wires a unidirectional router-to-router connection: a flit channel
// from (src, srcPort) to (dst, dstPort) plus the reverse credit channel, and
// initializes src's credit counters from dst's input buffer depth.
func (b *Base) Link(src router.Router, srcPort int, dst router.Router, dstPort int) {
	name := fmt.Sprintf("ch_r%dp%d_r%dp%d", src.ID(), srcPort, dst.ID(), dstPort)
	ch := channel.New(b.Sim, name, b.ChanLatency, b.ChanPeriod)
	ch.SetSink(dst, dstPort)
	src.ConnectOutput(srcPort, ch)
	b.Chans = append(b.Chans, ch)

	cc := channel.NewCredit(b.Sim, "cr_"+name, b.ChanLatency)
	cc.SetSink(src, srcPort)
	dst.ConnectCreditOut(dstPort, cc)

	src.SetDownstreamCredits(srcPort, dst.InputBufferDepth())
	b.AllLinks = append(b.AllLinks, Link{Ch: ch, Cr: cc, FromRouter: src.ID(), ToRouter: dst.ID()})
}

// LinkBidir wires both directions between two router ports.
func (b *Base) LinkBidir(a router.Router, aPort int, z router.Router, zPort int) {
	b.Link(a, aPort, z, zPort)
	b.Link(z, zPort, a, aPort)
}

// AttachTerminal wires interface ifc to (r, port) in both directions:
// injection (interface -> router) and ejection (router -> interface), each
// with its credit return channel.
func (b *Base) AttachTerminal(ifc *netiface.Interface, r router.Router, port int) {
	// Injection direction.
	injName := fmt.Sprintf("ch_t%d_r%dp%d", ifc.ID(), r.ID(), port)
	inj := channel.New(b.Sim, injName, b.InjLatency, b.ChanPeriod)
	inj.SetSink(r, port)
	ifc.ConnectOutput(inj)
	b.Chans = append(b.Chans, inj)

	injCr := channel.NewCredit(b.Sim, "cr_"+injName, b.InjLatency)
	injCr.SetSink(ifc, 0)
	r.ConnectCreditOut(port, injCr)
	ifc.SetDownstreamCredits(r.InputBufferDepth())
	b.AllLinks = append(b.AllLinks, Link{Ch: inj, Cr: injCr, FromRouter: Terminal, ToRouter: r.ID()})

	// Ejection direction.
	ejName := fmt.Sprintf("ch_r%dp%d_t%d", r.ID(), port, ifc.ID())
	ej := channel.New(b.Sim, ejName, b.InjLatency, b.ChanPeriod)
	ej.SetSink(ifc, 0)
	r.ConnectOutput(port, ej)
	b.Chans = append(b.Chans, ej)

	ejCr := channel.NewCredit(b.Sim, "cr_"+ejName, b.InjLatency)
	ejCr.SetSink(r, port)
	ifc.ConnectCreditOut(ejCr)
	r.SetDownstreamCredits(port, b.EjectDepth)
	b.AllLinks = append(b.AllLinks, Link{Ch: ej, Cr: ejCr, FromRouter: r.ID(), ToRouter: Terminal})
}

// NumRouters returns the number of routers built.
func (b *Base) NumRouters() int { return len(b.Routers) }

// NumTerminals returns the number of interfaces built.
func (b *Base) NumTerminals() int { return len(b.Interfaces) }

// Router returns the i-th router.
func (b *Base) Router(i int) router.Router { return b.Routers[i] }

// Interface returns the interface serving terminal i.
func (b *Base) Interface(i int) *netiface.Interface { return b.Interfaces[i] }

// Channels returns all flit channels.
func (b *Base) Channels() []*channel.Channel { return b.Chans }

// Links returns every recorded link with endpoint ownership.
func (b *Base) Links() []Link { return b.AllLinks }

// ChannelPeriod returns the link cycle time in ticks.
func (b *Base) ChannelPeriod() sim.Tick { return b.ChanPeriod }

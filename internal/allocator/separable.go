package allocator

import (
	"math/rand/v2"

	"supersim/internal/arbiter"
	"supersim/internal/config"
)

func init() {
	Registry.Register("separable_input_first",
		func(cfg *config.Settings, rng *rand.Rand, clients, resources int) Allocator {
			return newSeparable(cfg, rng, clients, resources, true)
		})
	Registry.Register("separable_output_first",
		func(cfg *config.Settings, rng *rand.Rand, clients, resources int) Allocator {
			return newSeparable(cfg, rng, clients, resources, false)
		})
}

// Separable is a two-stage separable allocator. In input-first order, each
// client first selects one of its requested resources (rank of per-client
// arbiters over resources), then each resource selects among the clients
// that chose it (rank of per-resource arbiters over clients). Output-first
// reverses the stages. Both ranks' arbitration policies are configurable
// ("client_arbiter" and "resource_arbiter" blocks; default round robin).
type Separable struct {
	clients, resources int
	inputFirst         bool
	clientArbs         []arbiter.Arbiter // one per client, over resources
	resourceArbs       []arbiter.Arbiter // one per resource, over clients

	// scratch
	stage     []bool
	candidate []int
}

func newSeparable(cfg *config.Settings, rng *rand.Rand, clients, resources int, inputFirst bool) *Separable {
	if clients <= 0 || resources <= 0 {
		panic("allocator: clients and resources must be positive")
	}
	s := &Separable{
		clients:    clients,
		resources:  resources,
		inputFirst: inputFirst,
	}
	s.clientArbs = make([]arbiter.Arbiter, clients)
	for c := range s.clientArbs {
		s.clientArbs[c] = subArbiter(cfg, "client_arbiter", rng, resources)
	}
	s.resourceArbs = make([]arbiter.Arbiter, resources)
	for r := range s.resourceArbs {
		s.resourceArbs[r] = subArbiter(cfg, "resource_arbiter", rng, clients)
	}
	n := clients
	if resources > n {
		n = resources
	}
	s.stage = make([]bool, n)
	s.candidate = make([]int, n)
	return s
}

// NumClients returns the number of clients.
func (s *Separable) NumClients() int { return s.clients }

// NumResources returns the number of resources.
func (s *Separable) NumResources() int { return s.resources }

// Allocate performs one allocation round.
func (s *Separable) Allocate(requests [][]bool, prio []uint64, grants []int) {
	checkShapes(s, requests, grants)
	for c := range grants {
		grants[c] = -1
	}
	if s.inputFirst {
		s.allocateInputFirst(requests, prio, grants)
	} else {
		s.allocateOutputFirst(requests, prio, grants)
	}
}

func (s *Separable) allocateInputFirst(requests [][]bool, prio []uint64, grants []int) {
	// Stage 1: each client picks a candidate resource.
	cand := s.candidate[:s.clients]
	for c := 0; c < s.clients; c++ {
		cand[c] = s.clientArbs[c].Grant(requests[c], nil)
	}
	// Stage 2: each resource arbitrates among clients that picked it.
	reqs := s.stage[:s.clients]
	for r := 0; r < s.resources; r++ {
		any := false
		for c := 0; c < s.clients; c++ {
			reqs[c] = cand[c] == r
			any = any || reqs[c]
		}
		if !any {
			continue
		}
		w := s.resourceArbs[r].Grant(reqs, prio)
		if w >= 0 {
			grants[w] = r
			s.resourceArbs[r].Latch(w)
			s.clientArbs[w].Latch(r)
		}
	}
}

func (s *Separable) allocateOutputFirst(requests [][]bool, prio []uint64, grants []int) {
	// Stage 1: each resource picks a candidate client among requesters.
	cand := s.candidate[:s.resources]
	reqs := s.stage[:s.clients]
	for r := 0; r < s.resources; r++ {
		any := false
		for c := 0; c < s.clients; c++ {
			reqs[c] = requests[c][r]
			any = any || reqs[c]
		}
		cand[r] = -1
		if any {
			cand[r] = s.resourceArbs[r].Grant(reqs, prio)
		}
	}
	// Stage 2: each client arbitrates among resources that picked it.
	res := s.stage[:s.resources]
	for c := 0; c < s.clients; c++ {
		any := false
		for r := 0; r < s.resources; r++ {
			res[r] = cand[r] == c
			any = any || res[r]
		}
		if !any {
			continue
		}
		w := s.clientArbs[c].Grant(res, nil)
		if w >= 0 {
			grants[c] = w
			s.clientArbs[c].Latch(w)
			s.resourceArbs[w].Latch(c)
		}
	}
}

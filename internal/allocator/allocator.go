// Package allocator implements allocators: components that match multiple
// requesting clients to multiple resources in a single allocation round.
// Routers use allocators for virtual channel allocation and crossbar
// (switch) allocation.
//
// The provided implementations are the classic separable allocators built
// from two ranks of per-client and per-resource arbiters.
package allocator

import (
	"math/rand/v2"

	"supersim/internal/arbiter"
	"supersim/internal/config"
	"supersim/internal/factory"
)

// Allocator matches clients to resources.
//
// requests[c][r] reports whether client c requests resource r. prio carries
// one metadata value per client (see arbiter.Arbiter). Allocate fills
// grants[c] with the granted resource index or -1; a resource is granted to
// at most one client and a client receives at most one resource.
type Allocator interface {
	NumClients() int
	NumResources() int
	Allocate(requests [][]bool, prio []uint64, grants []int)
}

// Ctor is the constructor signature registered by implementations.
type Ctor func(cfg *config.Settings, rng *rand.Rand, clients, resources int) Allocator

// Registry holds all allocator implementations.
var Registry = factory.NewRegistry[Ctor]("allocator")

// New builds the allocator named by cfg's "type" setting.
func New(cfg *config.Settings, rng *rand.Rand, clients, resources int) Allocator {
	return Registry.MustLookup(cfg.String("type"))(cfg, rng, clients, resources)
}

func checkShapes(a Allocator, requests [][]bool, grants []int) {
	if len(requests) != a.NumClients() || len(grants) != a.NumClients() {
		panic("allocator: requests/grants shape mismatch")
	}
	for _, row := range requests {
		if len(row) != a.NumResources() {
			panic("allocator: request row size mismatch")
		}
	}
}

func subArbiter(cfg *config.Settings, key string, rng *rand.Rand, size int) arbiter.Arbiter {
	sub := cfg.SubOr(key)
	if !sub.Has("type") {
		sub.Set("type", "round_robin")
	}
	return arbiter.New(sub, rng, size)
}

package allocator

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"supersim/internal/config"
)

func build(t *testing.T, typ string, clients, resources int) Allocator {
	t.Helper()
	cfg := config.MustParse(`{"type": "` + typ + `"}`)
	return New(cfg, rand.New(rand.NewPCG(5, 6)), clients, resources)
}

func reqMatrix(clients, resources int, pairs ...[2]int) [][]bool {
	m := make([][]bool, clients)
	for c := range m {
		m[c] = make([]bool, resources)
	}
	for _, p := range pairs {
		m[p[0]][p[1]] = true
	}
	return m
}

func checkMatching(t *testing.T, requests [][]bool, grants []int) {
	t.Helper()
	used := map[int]int{}
	for c, r := range grants {
		if r == -1 {
			continue
		}
		if !requests[c][r] {
			t.Fatalf("client %d granted un-requested resource %d", c, r)
		}
		if prev, dup := used[r]; dup {
			t.Fatalf("resource %d granted to clients %d and %d", r, prev, c)
		}
		used[r] = c
	}
}

func TestSeparableBothOrdersBasic(t *testing.T) {
	for _, typ := range []string{"separable_input_first", "separable_output_first"} {
		a := build(t, typ, 3, 3)
		req := reqMatrix(3, 3, [2]int{0, 0}, [2]int{1, 1}, [2]int{2, 2})
		grants := make([]int, 3)
		a.Allocate(req, nil, grants)
		// Non-conflicting requests must all be granted.
		for c := 0; c < 3; c++ {
			if grants[c] != c {
				t.Fatalf("%s: grants = %v, want identity", typ, grants)
			}
		}
	}
}

func TestSeparableConflictResolution(t *testing.T) {
	for _, typ := range []string{"separable_input_first", "separable_output_first"} {
		a := build(t, typ, 2, 1)
		req := reqMatrix(2, 1, [2]int{0, 0}, [2]int{1, 0})
		grants := make([]int, 2)
		a.Allocate(req, nil, grants)
		granted := 0
		for _, g := range grants {
			if g == 0 {
				granted++
			}
		}
		if granted != 1 {
			t.Fatalf("%s: resource granted %d times: %v", typ, granted, grants)
		}
	}
}

func TestSeparableRoundRobinRotatesUnderConflict(t *testing.T) {
	a := build(t, "separable_input_first", 2, 1)
	req := reqMatrix(2, 1, [2]int{0, 0}, [2]int{1, 0})
	winners := map[int]int{}
	grants := make([]int, 2)
	for i := 0; i < 10; i++ {
		a.Allocate(req, nil, grants)
		for c, g := range grants {
			if g == 0 {
				winners[c]++
			}
		}
	}
	if winners[0] != 5 || winners[1] != 5 {
		t.Fatalf("round robin under conflict gave %v, want 5/5", winners)
	}
}

func TestSeparableAgePriority(t *testing.T) {
	cfg := config.MustParse(`{
	  "type": "separable_input_first",
	  "resource_arbiter": {"type": "age_based"}
	}`)
	a := New(cfg, rand.New(rand.NewPCG(1, 2)), 3, 1)
	req := reqMatrix(3, 1, [2]int{0, 0}, [2]int{1, 0}, [2]int{2, 0})
	grants := make([]int, 3)
	prio := []uint64{30, 10, 20} // client 1 is oldest
	for i := 0; i < 4; i++ {
		a.Allocate(req, prio, grants)
		if grants[1] != 0 {
			t.Fatalf("iteration %d: oldest client not granted: %v", i, grants)
		}
	}
}

func TestSeparableWideMatch(t *testing.T) {
	// All clients request all resources; a separable allocator must produce a
	// legal (conflict-free) matching and, with identity-free conflicts,
	// grant at least one pair.
	for _, typ := range []string{"separable_input_first", "separable_output_first"} {
		a := build(t, typ, 4, 4)
		req := make([][]bool, 4)
		for c := range req {
			req[c] = []bool{true, true, true, true}
		}
		grants := make([]int, 4)
		total := 0
		for round := 0; round < 8; round++ {
			a.Allocate(req, nil, grants)
			checkMatching(t, req, grants)
			for _, g := range grants {
				if g != -1 {
					total++
				}
			}
		}
		if total < 8 {
			t.Fatalf("%s: only %d grants in 8 full-request rounds", typ, total)
		}
	}
}

func TestAllocatePropertyLegalMatching(t *testing.T) {
	ifirst := build(t, "separable_input_first", 5, 4)
	ofirst := build(t, "separable_output_first", 5, 4)
	prop := func(bits [5]uint8, prios [5]uint16) bool {
		req := make([][]bool, 5)
		for c := range req {
			req[c] = make([]bool, 4)
			for r := 0; r < 4; r++ {
				req[c][r] = bits[c]&(1<<r) != 0
			}
		}
		prio := make([]uint64, 5)
		for i := range prio {
			prio[i] = uint64(prios[i])
		}
		for _, a := range []Allocator{ifirst, ofirst} {
			grants := make([]int, 5)
			a.Allocate(req, prio, grants)
			used := map[int]bool{}
			for c, r := range grants {
				if r == -1 {
					continue
				}
				if !req[c][r] || used[r] {
					return false
				}
				used[r] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorShapeChecks(t *testing.T) {
	a := build(t, "separable_input_first", 2, 2)
	grants := make([]int, 2)
	mustPanic(t, func() { a.Allocate(reqMatrix(3, 2), nil, grants) })
	mustPanic(t, func() { a.Allocate(reqMatrix(2, 3), nil, grants) })
	mustPanic(t, func() { a.Allocate(reqMatrix(2, 2), nil, make([]int, 1)) })
}

func TestAllocatorInvalidSizes(t *testing.T) {
	mustPanic(t, func() { build(t, "separable_input_first", 0, 2) })
	mustPanic(t, func() { build(t, "separable_output_first", 2, 0) })
}

func TestAllocatorAccessors(t *testing.T) {
	a := build(t, "separable_input_first", 3, 5)
	if a.NumClients() != 3 || a.NumResources() != 5 {
		t.Fatal("accessors wrong")
	}
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

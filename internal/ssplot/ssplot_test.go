package ssplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sample() []Series {
	return []Series{
		{Label: "fb", XY: [][2]float64{{0.1, 100}, {0.5, 150}, {0.9, 400}}},
		{Label: "pb", XY: [][2]float64{{0.1, 110}, {0.5, 200}, {0.9, 900}}},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "x,fb,pb" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[1] != "0.1,100,110" {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestWriteCSVMissingCells(t *testing.T) {
	series := []Series{
		{Label: "a", XY: [][2]float64{{1, 10}}},
		{Label: "b", XY: [][2]float64{{2, 20}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "1,10," || lines[2] != "2,,20" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestPlotContainsMarkersAndLegend(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "load vs latency", "load", "latency", sample(), 40, 10)
	out := buf.String()
	if !strings.Contains(out, "load vs latency") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x fb") == false {
		// legend lines: "  o fb" and "  x pb"
	}
	if !strings.Contains(out, "o fb") || !strings.Contains(out, "x pb") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "x: load, y: latency") {
		t.Fatal("missing axis labels")
	}
}

func TestPlotEmpty(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "empty", "x", "y", nil, 40, 10)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("empty plot should say so")
	}
}

func TestPlotSkipsNonFinite(t *testing.T) {
	s := []Series{{Label: "a", XY: [][2]float64{
		{1, 5}, {2, math.NaN()}, {3, math.Inf(1)}, {4, 8},
	}}}
	var buf bytes.Buffer
	Plot(&buf, "t", "x", "y", s, 30, 8)
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into plot")
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	// Single point: min == max on both axes must not divide by zero.
	s := []Series{{Label: "a", XY: [][2]float64{{5, 5}}}}
	var buf bytes.Buffer
	Plot(&buf, "t", "x", "y", s, 30, 8)
	if !strings.Contains(buf.String(), "o") {
		t.Fatal("single point not plotted")
	}
}

func TestPlotTinyDimensionsClamped(t *testing.T) {
	var buf bytes.Buffer
	Plot(&buf, "t", "x", "y", sample(), 1, 1) // clamped to minimums
	if len(buf.String()) == 0 {
		t.Fatal("no output")
	}
}

func TestShortFormat(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		1500:    "1.5k",
		2500000: "2.5M",
	}
	for v, want := range cases {
		if got := short(v); got != want {
			t.Errorf("short(%v) = %q, want %q", v, got, want)
		}
	}
}

package ssplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// svg palette for series strokes.
var svgColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
	"#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// WriteSVG renders the series as a standalone SVG line chart. It is the
// backend used by the sweep report's web viewer; no external libraries are
// involved.
func WriteSVG(w io.Writer, title, xlabel, ylabel string, series []Series, width, height int) error {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const mL, mR, mT, mB = 70, 160, 40, 50 // margins (legend right)
	plotW, plotH := width-mL-mR, height-mT-mB

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.XY {
			if !finite(p[0]) || !finite(p[1]) {
				continue
			}
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(mL) + (x-minX)/(maxX-minX)*float64(plotW) }
	py := func(y float64) float64 { return float64(mT+plotH) - (y-minY)/(maxY-minY)*float64(plotH) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n", mL, escape(title))
	// axes
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mL, mT+plotH, mL+plotW, mT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mL, mT, mL, mT+plotH)
	// ticks: min and max on both axes
	fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", mL, mT+plotH+20, short(minX))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", mL+plotW, mT+plotH+20, short(maxX))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", mL-6, mT+plotH, short(minY))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", mL-6, mT+12, short(maxY))
	// axis labels
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", mL+plotW/2, height-10, escape(xlabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		mT+plotH/2, mT+plotH/2, escape(ylabel))
	// series
	for si, s := range series {
		color := svgColors[si%len(svgColors)]
		var pts []string
		for _, p := range s.XY {
			if !finite(p[0]) || !finite(p[1]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p[0]), py(p[1])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n", xy[0], xy[1], color)
		}
		// legend
		ly := mT + 14*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", mL+plotW+10, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", mL+plotW+24, ly+9, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

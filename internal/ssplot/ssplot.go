// Package ssplot renders the analysis plots of the ecosystem — load versus
// latency, percentile distributions, PDFs/CDFs and transient time series —
// as CSV data files and as ASCII line plots for terminals. It is the
// stdlib-only counterpart of the original Matplotlib-based SSPlot tool: the
// numeric series are identical; only the rendering backend differs.
package ssplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled line of (x, y) points.
type Series struct {
	Label string
	XY    [][2]float64
}

// WriteCSV emits all series as a wide CSV: x, then one y column per series.
// Rows are the union of x values; missing points are empty cells.
func WriteCSV(w io.Writer, series []Series) error {
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, "x")
	for _, s := range series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	// Union of x values in ascending order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.XY {
			if !seen[p[0]] {
				seen[p[0]] = true
				xs = append(xs, p[0])
			}
		}
	}
	sortFloats(xs)
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, trimFloat(x))
		for _, s := range series {
			cell := ""
			for _, p := range s.XY {
				if p[0] == x {
					cell = trimFloat(p[1])
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Plot renders an ASCII line plot of the series into w. Each series gets a
// distinct marker; a legend follows the axes. Non-finite values are skipped.
func Plot(w io.Writer, title, xlabel, ylabel string, series []Series, width, height int) {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.XY {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if !any {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := "ox+*#@%&"
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.XY {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				continue
			}
			c := int((p[0] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((p[1]-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = m
		}
	}
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%-10s", short(maxY))
		} else if r == height-1 {
			label = fmt.Sprintf("%-10s", short(minY))
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%10s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s %-12s%*s\n", "", short(minX), width-12, short(maxX))
	fmt.Fprintf(w, "x: %s, y: %s\n", xlabel, ylabel)
	for si, s := range series {
		fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
}

func short(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

package ssplot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteSVGBasics(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSVG(&buf, "t<itle>", "load", "latency", sample(), 640, 360)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"t&lt;itle&gt;", // escaped title
		"fb", "pb",      // legend
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if strings.Count(out, "polyline") != 2 {
		t.Fatalf("want 2 polylines")
	}
}

func TestWriteSVGEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, "e", "x", "y", nil, 10, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no svg emitted")
	}
	buf.Reset()
	one := []Series{{Label: "p", XY: [][2]float64{{5, 5}}}}
	if err := WriteSVG(&buf, "d", "x", "y", one, 300, 200); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "circle") {
		t.Fatal("single point not drawn")
	}
}

func TestWriteSVGSkipsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	s := []Series{{Label: "a", XY: [][2]float64{{1, 2}, {math.NaN(), 3}, {4, math.Inf(1)}, {5, 6}}}}
	if err := WriteSVG(&buf, "t", "x", "y", s, 300, 200); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Fatal("non-finite values leaked")
	}
}

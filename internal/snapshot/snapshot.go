// Package snapshot implements the wire codec for simulator checkpoints: a
// compact, versioned, deterministic binary format every stateful component
// serializes itself into (see the per-package checkpoint.go files and
// internal/core's container assembly).
//
// The codec is a leaf: it depends only on the standard library, so every
// package in the simulator — including internal/sim itself — can import it.
//
// # Format
//
// A snapshot is a byte stream of primitive values: unsigned varints, zigzag
// signed varints, fixed 8-byte float bits, length-prefixed blobs/strings, and
// single-byte booleans. There is no self-description; reader and writer must
// agree on the sequence, which is why the stream opens with a magic string
// and a schema version (WriteHeader/ReadHeader) and why readers fail fast on
// any version they do not know. Section tags (Section) are short embedded
// markers that turn a misaligned read into an immediate, located error
// instead of garbage values propagating downstream.
//
// # Error handling
//
// The Decoder is sticky: the first malformed, truncated, or out-of-bounds
// read records an error, and every subsequent read returns a zero value
// without advancing. Callers check Err (or the error returned by the typed
// helpers) once per logical unit rather than after every primitive. Decoding
// never panics on arbitrary input — lengths and counts are bounds-checked
// against the remaining input before any allocation — which is fuzz-enforced
// by FuzzDecoder.
//
// # Determinism
//
// Snapshot bytes are compared byte-for-byte by the import/export equivalence
// tests, so encoders must be deterministic: iterate slices, or map keys in
// sorted order, never raw Go maps. The sslint determinism rule covers this
// package for that reason.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Magic opens every snapshot stream.
const Magic = "SSIMSNAP"

// Version is the schema version this build reads and writes. Readers reject
// any other version (fail-fast forward compatibility): state layouts are not
// self-describing, so decoding a future layout would silently corrupt state.
const Version = 1

// Encoder appends primitive values to a growing byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded stream. The slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// WriteHeader writes the magic string and schema version.
func (e *Encoder) WriteHeader() {
	e.buf = append(e.buf, Magic...)
	e.U64(Version)
}

// U64 writes an unsigned varint.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// U32 writes a 32-bit unsigned value as a varint.
func (e *Encoder) U32(v uint32) { e.U64(uint64(v)) }

// I64 writes a signed value as a zigzag varint.
func (e *Encoder) I64(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Int writes a signed int as a zigzag varint.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool writes a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 writes a float64 as its IEEE-754 bits, fixed 8 bytes little-endian.
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Blob writes a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Str writes a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Section writes a named section marker. The matching Decoder.Section call
// verifies it, localizing any encoder/decoder sequence mismatch.
func (e *Encoder) Section(tag string) { e.Str(tag) }

// Decoder reads primitive values from a byte stream with sticky error
// semantics: after the first error every read returns a zero value.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps a byte stream for decoding.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Failf records a decoding error (if none is recorded yet) and returns it.
// Component loaders use it to reject semantically invalid values the codec
// itself cannot know about (counts out of range, mismatched identities).
func (d *Decoder) Failf(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
	return d.err
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// Done returns an error if decoding failed or unread bytes remain.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return d.Failf("%d trailing bytes after decode", len(d.data)-d.off)
	}
	return nil
}

// ReadHeader validates the magic string and schema version, failing fast on
// unknown versions.
func (d *Decoder) ReadHeader() error {
	if d.err != nil {
		return d.err
	}
	if len(d.data)-d.off < len(Magic) || string(d.data[d.off:d.off+len(Magic)]) != Magic {
		return d.Failf("bad magic: not a snapshot stream")
	}
	d.off += len(Magic)
	v := d.U64()
	if d.err != nil {
		return d.err
	}
	if v != Version {
		return d.Failf("unsupported schema version %d (this build reads version %d)", v, Version)
	}
	return nil
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.Failf("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// U32 reads a 32-bit unsigned value, rejecting out-of-range varints.
func (d *Decoder) U32() uint32 {
	v := d.U64()
	if v > math.MaxUint32 {
		d.Failf("value %d overflows uint32", v)
		return 0
	}
	return uint32(v)
}

// I64 reads a zigzag signed varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.Failf("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed int, rejecting values that do not fit the platform int.
func (d *Decoder) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.Failf("value %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads a single-byte boolean; any value other than 0 or 1 is an error.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.Failf("truncated bool at offset %d", d.off)
		return false
	}
	b := d.data[d.off]
	d.off++
	switch b {
	case 0:
		return false
	case 1:
		return true
	}
	d.Failf("invalid bool byte %d at offset %d", b, d.off-1)
	return false
}

// F64 reads a fixed 8-byte IEEE-754 float.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.Failf("truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Blob reads a length-prefixed byte slice. The length is bounds-checked
// against the remaining input before allocating, so corrupted lengths cannot
// trigger huge allocations.
func (d *Decoder) Blob() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.Failf("blob length %d exceeds %d remaining bytes at offset %d", n, d.Remaining(), d.off)
		return nil
	}
	b := make([]byte, n)
	copy(b, d.data[d.off:d.off+int(n)])
	d.off += int(n)
	return b
}

// Str reads a length-prefixed string, bounds-checked like Blob.
func (d *Decoder) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.Failf("string length %d exceeds %d remaining bytes at offset %d", n, d.Remaining(), d.off)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Count reads an element count written by Encoder.Int for a follow-on
// sequence of records. Negative counts are rejected, and because every record
// occupies at least one byte, a count larger than the remaining input is
// necessarily corrupt; rejecting it here lets loaders size slices with
// make(count) without an allocation-bomb risk.
func (d *Decoder) Count() int {
	at := d.off
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.Failf("negative count %d at offset %d", n, at)
		return 0
	}
	if n > int64(d.Remaining()) {
		d.Failf("count %d exceeds %d remaining bytes at offset %d", n, d.Remaining(), at)
		return 0
	}
	return int(n)
}

// Section verifies a named section marker written by Encoder.Section.
func (d *Decoder) Section(tag string) error {
	if d.err != nil {
		return d.err
	}
	at := d.off
	got := d.Str()
	if d.err != nil {
		return d.err
	}
	if got != tag {
		return d.Failf("expected section %q at offset %d, found %q", tag, at, got)
	}
	return nil
}

// Stater is implemented by components that serialize their mutable state.
// SaveState appends to the encoder; LoadState consumes the exact same
// sequence and reports the first decoding or consistency error. LoadState
// runs on a freshly built component (same configuration), so it overwrites
// state rather than constructing it.
type Stater interface {
	SaveState(e *Encoder)
	LoadState(d *Decoder) error
}

package snapshot

import (
	"testing"
)

// FuzzDecoder feeds arbitrary bytes through every decoding primitive and the
// header/section validators. The contract under test: arbitrary input —
// corrupted, truncated, or version-skewed — must surface as a sticky error,
// never as a panic, an over-allocation, or an out-of-bounds read. The seed
// corpus in testdata/fuzz/FuzzDecoder covers a valid stream, a truncated
// stream, a version-skewed header, and length-bomb prefixes.
func FuzzDecoder(f *testing.F) {
	valid := NewEncoder()
	valid.WriteHeader()
	valid.Section("SIM")
	valid.U64(12345)
	valid.I64(-99)
	valid.Bool(true)
	valid.F64(2.5)
	valid.Blob([]byte("payload"))
	valid.Str("name")
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])

	skew := NewEncoder()
	skew.buf = append(skew.buf, Magic...)
	skew.U64(Version + 1)
	f.Add(skew.Bytes())

	bomb := NewEncoder()
	bomb.U64(1 << 50)
	f.Add(bomb.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.ReadHeader()
		_ = d.Section("SIM")
		// Exercise every primitive repeatedly; sticky errors must make all
		// of these safe no matter where the input goes wrong.
		for i := 0; i < 8 && d.Err() == nil; i++ {
			_ = d.U64()
			_ = d.U32()
			_ = d.I64()
			_ = d.Int()
			_ = d.Bool()
			_ = d.F64()
			_ = d.Blob()
			_ = d.Str()
			_ = d.Count()
		}
		if d.Err() != nil {
			// Sticky: reads after an error return zero values and never move.
			off := d.off
			if d.U64() != 0 || d.Str() != "" || d.Blob() != nil || d.Bool() {
				t.Fatal("non-zero read after decoder error")
			}
			if d.off != off {
				t.Fatal("decoder advanced after error")
			}
		}
		// Done must never panic either.
		_ = d.Done()
	})
}

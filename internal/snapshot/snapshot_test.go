package snapshot

import (
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.WriteHeader()
	e.Section("ABC")
	e.U64(0)
	e.U64(math.MaxUint64)
	e.U32(0xdeadbeef)
	e.I64(-1)
	e.I64(math.MinInt64)
	e.Int(-42)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.14159)
	e.F64(math.Inf(-1))
	e.Blob([]byte{1, 2, 3})
	e.Blob(nil)
	e.Str("hello")
	e.Str("")

	d := NewDecoder(e.Bytes())
	if err := d.ReadHeader(); err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if err := d.Section("ABC"); err != nil {
		t.Fatalf("Section: %v", err)
	}
	if v := d.U64(); v != 0 {
		t.Errorf("U64 = %d, want 0", v)
	}
	if v := d.U64(); v != math.MaxUint64 {
		t.Errorf("U64 = %d, want max", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %x", v)
	}
	if v := d.I64(); v != -1 {
		t.Errorf("I64 = %d, want -1", v)
	}
	if v := d.I64(); v != math.MinInt64 {
		t.Errorf("I64 = %d, want min", v)
	}
	if v := d.Int(); v != -42 {
		t.Errorf("Int = %d, want -42", v)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool sequence wrong")
	}
	if v := d.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 = %v, want -Inf", v)
	}
	if b := d.Blob(); len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Errorf("Blob = %v", b)
	}
	if b := d.Blob(); len(b) != 0 {
		t.Errorf("empty Blob = %v", b)
	}
	if s := d.Str(); s != "hello" {
		t.Errorf("Str = %q", s)
	}
	if s := d.Str(); s != "" {
		t.Errorf("empty Str = %q", s)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestHeaderRejectsBadMagic(t *testing.T) {
	d := NewDecoder([]byte("NOTASNAP\x01"))
	if err := d.ReadHeader(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
}

func TestHeaderRejectsVersionSkew(t *testing.T) {
	e := NewEncoder()
	e.buf = append(e.buf, Magic...)
	e.U64(Version + 7)
	d := NewDecoder(e.Bytes())
	if err := d.ReadHeader(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestHeaderRejectsTruncation(t *testing.T) {
	e := NewEncoder()
	e.WriteHeader()
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		if err := d.ReadHeader(); err == nil {
			t.Fatalf("truncated header at %d bytes decoded without error", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.U64() // fails: empty input
	if d.Err() == nil {
		t.Fatal("expected error on empty input")
	}
	first := d.Err()
	// Every further read must return zero values and keep the first error.
	if d.U64() != 0 || d.I64() != 0 || d.Bool() || d.F64() != 0 || d.Str() != "" || d.Blob() != nil {
		t.Error("reads after error did not return zero values")
	}
	if d.Err() != first {
		t.Errorf("sticky error replaced: %v -> %v", first, d.Err())
	}
}

func TestBlobLengthBomb(t *testing.T) {
	e := NewEncoder()
	e.U64(1 << 40) // a 1 TiB length prefix with no payload
	d := NewDecoder(e.Bytes())
	if b := d.Blob(); b != nil || d.Err() == nil {
		t.Fatalf("oversized blob length decoded: %v, err %v", b, d.Err())
	}
}

func TestCountBomb(t *testing.T) {
	e := NewEncoder()
	e.Int(1 << 40)
	d := NewDecoder(e.Bytes())
	if n := d.Count(); n != 0 || d.Err() == nil {
		t.Fatalf("oversized count accepted: %d, err %v", n, d.Err())
	}
}

func TestSectionMismatch(t *testing.T) {
	e := NewEncoder()
	e.Section("AAA")
	d := NewDecoder(e.Bytes())
	if err := d.Section("BBB"); err == nil || !strings.Contains(err.Error(), "section") {
		t.Fatalf("want section mismatch error, got %v", err)
	}
}

func TestDoneRejectsTrailingBytes(t *testing.T) {
	e := NewEncoder()
	e.U64(7)
	e.U64(9)
	d := NewDecoder(e.Bytes())
	_ = d.U64()
	if err := d.Done(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-bytes error, got %v", err)
	}
}

func TestBoolRejectsInvalidByte(t *testing.T) {
	d := NewDecoder([]byte{2})
	if d.Bool() || d.Err() == nil {
		t.Fatalf("invalid bool byte accepted, err %v", d.Err())
	}
}

func TestIntOverflowRejected(t *testing.T) {
	e := NewEncoder()
	e.U64(math.MaxUint64)
	d := NewDecoder(e.Bytes())
	if v := d.U32(); v != 0 || d.Err() == nil {
		t.Fatalf("uint32 overflow accepted: %d", v)
	}
}

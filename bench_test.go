// Package supersim's benchmark harness regenerates every table and figure in
// the paper's evaluation. Each benchmark runs the corresponding experiment
// once per iteration and prints its rows/series; b.N is 1 in practice since
// an experiment takes seconds to minutes.
//
//	go test -bench=. -benchmem                 # reduced-scale suite
//	SUPERSIM_FULL=1 go test -bench=Figure9b    # paper-scale (hours)
//
// Profiling: the standard go test flags produce pprof profiles of any
// benchmark (go test -bench=Figure5 -cpuprofile=cpu.out -memprofile=mem.out),
// and SUPERSIM_MONITOR=N attaches a sim.ProgressMonitor to every simulation,
// printing an events/sec + heap line to stderr every N executed events.
//
// See EXPERIMENTS.md for the recorded outputs and paper-vs-measured notes.
package supersim_test

import (
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"testing"

	"fmt"

	"supersim/internal/config"
	"supersim/internal/core"
	"supersim/internal/experiments"
	"supersim/internal/sim"
	"supersim/internal/stats"
)

func benchName(prefix string, v uint64) string { return fmt.Sprintf("%s_%d", prefix, v) }

func opts(b *testing.B) experiments.Options {
	debug.SetGCPercent(600) // DES allocation churn likes a lazier GC
	var out io.Writer
	if testing.Verbose() {
		out = os.Stderr
	}
	monitor, _ := strconv.ParseUint(os.Getenv("SUPERSIM_MONITOR"), 10, 64)
	return experiments.Options{
		Full:         os.Getenv("SUPERSIM_FULL") == "1",
		Seed:         1,
		Out:          out,
		MonitorEvery: monitor,
	}
}

// BenchmarkTableI validates the three case-study parameter sets build.
func BenchmarkTableI(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI(o)
		for _, r := range rows {
			if !r.Buildable {
				b.Fatalf("%s configuration failed to build", r.Study)
			}
		}
		if i == 0 {
			experiments.PrintTableI(os.Stdout, rows)
		}
	}
}

// BenchmarkFigure5 regenerates the Blast/Pulse transient (Figure 5).
func BenchmarkFigure5(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(o)
		if r.PulsePeak <= r.BlastMean {
			b.Fatalf("pulse did not disturb blast: peak %.1f vs mean %.1f",
				r.PulsePeak, r.BlastMean)
		}
		if i == 0 {
			experiments.PrintFigure5(os.Stdout, r)
		}
	}
}

// BenchmarkFigure5Spans runs the same transient with span recording enabled
// at full sampling (fold-only, no JSONL stream) — the instrumented
// counterpart of the bench-guard's disabled-path BenchmarkFigure5. Run via
// `make bench-guard-spans`; the guard reports it informationally and only
// enforces the disabled-path ceiling.
func BenchmarkFigure5Spans(b *testing.B) {
	o := opts(b)
	o.SpansSample = 1.0
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(o)
		if r.PulsePeak <= r.BlastMean {
			b.Fatalf("pulse did not disturb blast: peak %.1f vs mean %.1f",
				r.PulsePeak, r.BlastMean)
		}
	}
}

// BenchmarkFigure5Workers runs the Figure 5 transient at explicit worker
// counts. The workers_1 case is the serial path reached through the
// simulation.workers setting — `make bench-guard` enforces the committed
// allocs/op ceiling against it, pinning "parallel support costs the serial
// path nothing". The higher counts exercise the sharded engine end to end and
// report its wall-clock for EXPERIMENTS.md (speedup is hardware-dependent;
// results are identical at every count).
func BenchmarkFigure5Workers(b *testing.B) {
	for _, w := range []uint64{1, 2, 4} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			o := opts(b)
			o.Workers = w
			for i := 0; i < b.N; i++ {
				r := experiments.Figure5(o)
				if r.PulsePeak <= r.BlastMean {
					b.Fatalf("pulse did not disturb blast: peak %.1f vs mean %.1f",
						r.PulsePeak, r.BlastMean)
				}
			}
		})
	}
}

// BenchmarkFigure5TraceParallel runs the Figure 5 transient at workers=2
// with full-sampling flit tracing: every trace record lands in a per-shard
// lane and the end-of-run merge reassembles the serial emission order. The
// bench-guard reports it informationally alongside the spans path — the
// enforced ceiling stays on the tracing-disabled benchmarks, whose hot path
// this feature must not touch.
func BenchmarkFigure5TraceParallel(b *testing.B) {
	o := opts(b)
	o.Workers = 2
	o.TraceFile = filepath.Join(b.TempDir(), "trace.json")
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(o)
		if r.PulsePeak <= r.BlastMean {
			b.Fatalf("pulse did not disturb blast: peak %.1f vs mean %.1f",
				r.PulsePeak, r.BlastMean)
		}
	}
}

// BenchmarkFigure7 regenerates the percentile distribution plot (Figure 7).
func BenchmarkFigure7(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curve := experiments.Figure7(o)
		if len(curve) == 0 {
			b.Fatal("no percentile points")
		}
		if i == 0 {
			experiments.PrintFigure7(os.Stdout, curve)
		}
	}
}

// BenchmarkFigure8 regenerates the load-vs-latency-distribution plot with
// phantom congestion (Figure 8).
func BenchmarkFigure8(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		c := experiments.Figure8(o)
		if len(c.Points) < 3 {
			b.Fatal("load sweep too short")
		}
		if i == 0 {
			experiments.PrintCurves(os.Stdout, "Figure 8", []experiments.Curve{c})
		}
	}
}

// BenchmarkFigure9a regenerates the congestion sensing latency sweep with
// infinite output queues (Figure 9a).
func BenchmarkFigure9a(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure9(o, true)
		if i == 0 {
			experiments.PrintCurves(os.Stdout, "Figure 9a", curves)
		}
	}
}

// BenchmarkFigure9b regenerates the sweep with finite 64-flit output queues
// (Figure 9b), where throughput collapses with sensing latency.
func BenchmarkFigure9b(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure9(o, false)
		if i == 0 {
			experiments.PrintCurves(os.Stdout, "Figure 9b", curves)
		}
	}
}

// BenchmarkFigure9Small regenerates the §VI-A 512-terminal text result
// (paper: 90%, 90%, 75%, 40% throughput at 1, 2, 4, 8 ns sensing latency).
func BenchmarkFigure9Small(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure9Small(o)
		first := curves[0].SaturationThroughput()
		last := curves[len(curves)-1].SaturationThroughput()
		if last >= first {
			b.Fatalf("throughput did not degrade with sensing latency: %.3f -> %.3f",
				first, last)
		}
		if i == 0 {
			experiments.PrintThroughputs(os.Stdout, "VI-A 512-terminal variant", curves)
		}
	}
}

// BenchmarkFigure10a regenerates the credit accounting comparison under
// uniform random traffic (Figure 10a; port-based accounting wins).
func BenchmarkFigure10a(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure10(o, false)
		if i == 0 {
			experiments.PrintCurves(os.Stdout, "Figure 10a", curves)
		}
	}
}

// BenchmarkFigure10b regenerates the comparison under bit complement traffic
// (Figure 10b; VC-based accounting wins).
func BenchmarkFigure10b(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure10(o, true)
		if i == 0 {
			experiments.PrintCurves(os.Stdout, "Figure 10b", curves)
		}
	}
}

// BenchmarkFigure11 regenerates the flow control technique throughput matrix
// (Figure 11: FB vs PB vs WTA across message sizes and VC counts).
func BenchmarkFigure11(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		points := experiments.Figure11(o)
		if i == 0 {
			experiments.PrintFigure11(os.Stdout, points)
		}
	}
}

// BenchmarkFigure12 regenerates the flow control latency comparison at 8 VCs
// with 32-flit messages (Figure 12: FB best, PB worst, WTA between).
func BenchmarkFigure12(b *testing.B) {
	o := opts(b)
	for i := 0; i < b.N; i++ {
		curves := experiments.Figure12(o)
		if i == 0 {
			experiments.PrintCurves(os.Stdout, "Figure 12", curves)
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkEventQueue measures raw DES engine throughput: events/op is the
// metric (one op = one scheduled+executed event) at a realistic pending-set
// size.
func BenchmarkEventQueue(b *testing.B) {
	s := sim.NewSimulator(1)
	const pending = 8192
	var h sim.Handler
	h = sim.HandlerFunc(func(ev *sim.Event) {
		s.Schedule(h, s.Now().Plus(1+sim.Tick(ev.Type%97)), ev.Type, nil)
	})
	for i := 0; i < pending; i++ {
		s.Schedule(h, sim.Time{Tick: sim.Tick(i%97) + 1}, i, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += pending {
		s.RunUntil(s.Now().Tick + 97)
	}
}

// BenchmarkAblationRouterArch compares the three router architectures on an
// identical small workload, quantifying the paper's claim that the OQ model
// reduces simulation execution time.
func BenchmarkAblationRouterArch(b *testing.B) {
	mk := func(arch string) *config.Settings {
		cfg := config.MustParse(`{
		  "simulation": {"seed": 5},
		  "network": {
		    "topology": "hyperx",
		    "widths": [8], "concentration": 4,
		    "channel": {"latency": 20, "period": 2},
		    "injection": {"latency": 2},
		    "router": {
		      "architecture": "` + arch + `",
		      "num_vcs": 2, "input_buffer_depth": 32,
		      "crossbar_latency": 10, "queue_latency": 10,
		      "output_queue_depth": 64
		    },
		    "routing": {"algorithm": "dimension_order"}
		  },
		  "workload": {"applications": [{
		    "type": "blast", "injection_rate": 0.4, "message_size": 1,
		    "warmup_duration": 500, "sample_duration": 3000,
		    "traffic": {"type": "uniform_random"}
		  }]}
		}`)
		return cfg
	}
	for _, arch := range []string{"output_queued", "input_queued", "input_output_queued"} {
		b.Run(arch, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sm := core.Build(mk(arch))
				if _, err := sm.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sm.Sim.Executed()), "events")
			}
		})
	}
}

// BenchmarkAblationArbiter compares round-robin against age-based
// arbitration on the parking lot workload: the fairness ratio (far terminal
// deliveries / near terminal deliveries) is reported per policy.
func BenchmarkAblationArbiter(b *testing.B) {
	run := func(policy string) float64 {
		cfg := config.MustParse(`{
		  "simulation": {"seed": 21},
		  "network": {
		    "topology": "parking_lot", "routers": 5,
		    "channel": {"latency": 4, "period": 2},
		    "injection": {"latency": 2},
		    "router": {
		      "architecture": "input_queued", "num_vcs": 1,
		      "input_buffer_depth": 8, "crossbar_latency": 2,
		      "crossbar_policy": "` + policy + `",
		      "vc_policy": "` + policy + `"
		    }
		  },
		  "workload": {"applications": [{
		    "type": "blast", "injection_rate": 0.9, "message_size": 1,
		    "warmup_duration": 1000, "sample_duration": 8000,
		    "source_queue_limit": 16,
		    "traffic": {"type": "fixed", "destination": 0}
		  }]}
		}`)
		sm := core.Build(cfg)
		if _, err := sm.Run(); err != nil {
			b.Fatal(err)
		}
		counts := map[int]int{}
		for _, s := range sm.Workload.App(0).(stats.Provider).Stats().Samples() {
			counts[s.Src]++
		}
		if counts[1] == 0 {
			return 0
		}
		return float64(counts[4]) / float64(counts[1])
	}
	for _, policy := range []string{"round_robin", "age_based"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(run(policy), "fairness")
			}
		})
	}
}

// BenchmarkAblationSensorDelay measures the cost of the delayed-visibility
// congestion sensor against a zero-latency sensor on the Clos workload.
func BenchmarkAblationSensorDelay(b *testing.B) {
	for _, lat := range []uint64{0, 8, 32} {
		b.Run(benchName("latency", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.MustParse(`{
				  "simulation": {"seed": 2},
				  "network": {
				    "topology": "folded_clos", "half_radix": 4, "levels": 2,
				    "channel": {"latency": 20, "period": 1},
				    "injection": {"latency": 1},
				    "router": {
				      "architecture": "output_queued", "num_vcs": 1,
				      "input_buffer_depth": 64, "queue_latency": 10,
				      "congestion_sensor": {"granularity": "port", "source": "output"}
				    }
				  },
				  "workload": {"applications": [{
				    "type": "blast", "injection_rate": 0.5, "message_size": 1,
				    "warmup_duration": 500, "sample_duration": 3000,
				    "traffic": {"type": "uniform_random"}
				  }]}
				}`)
				cfg.Set("network.router.congestion_sensor.latency", lat)
				sm := core.Build(cfg)
				if _, err := sm.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

#!/bin/sh
# sweep_smoke.sh
#
# End-to-end smoke test of the fleet-observability pipeline (`make
# sweep-smoke`): a tiny two-point channel-latency sweep runs with the task
# journal, per-permutation run manifests and the live dashboard all enabled,
# then every downstream consumer is driven over the artifacts it produced:
#
#   1. sssweep -journal/-manifest-dir/-serve runs the campaign while the
#      script polls the live /sweep endpoint and checks it serves valid
#      progress JSON and /metrics exposes the sweep_* Prometheus series;
#   2. the run manifests must parse and carry the sweep-point labels;
#   3. ssparse -tasks renders the journal summary and the per-task CSV;
#   4. ssplot -plot taskgantt renders the timeline with the resource
#      utilization row.
#
# The observability additions must also keep the disabled hot path free: the
# caller (the sweep-smoke Makefile target) runs the bench-guard against the
# unchanged committed ceiling after this script passes.
set -eu

go=${GO:-go}
tmp=$(mktemp -d)
sweep_pid=
trap 'test -z "$sweep_pid" || kill "$sweep_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "sweep-smoke: building tools"
"$go" build -o "$tmp/bin/" ./cmd/sssweep ./cmd/ssparse ./cmd/ssplot

cat > "$tmp/config.json" <<'EOF'
{
  "simulation": {"seed": 7},
  "network": {
    "topology": "torus",
    "dimensions": [4, 4],
    "concentration": 1,
    "channel": {"latency": 2, "period": 1},
    "injection": {"latency": 1},
    "router": {
      "architecture": "input_queued",
      "num_vcs": 2,
      "input_buffer_depth": 64,
      "crossbar_latency": 2
    }
  },
  "workload": {
    "applications": [{
      "type": "blast",
      "injection_rate": 0.3,
      "message_size": 1,
      "warmup_duration": 1000,
      "sample_duration": 60000,
      "traffic": {"type": "uniform_random"}
    }]
  }
}
EOF

addr=127.0.0.1:${SWEEP_SMOKE_PORT:-18327}
echo "sweep-smoke: running two-point sweep with journal, manifests and dashboard on $addr"
"$tmp/bin/sssweep" -cpus 1 \
    -var Lat=CL=network.channel.latency=uint=2,4 \
    -journal "$tmp/tasks.jsonl" \
    -manifest-dir "$tmp/manifests" \
    -serve "$addr" \
    "$tmp/config.json" > "$tmp/sweep.csv" 2> "$tmp/sweep.log" &
sweep_pid=$!

# Probe the live dashboard while the campaign runs. /sweep must serve valid
# JSON with the expected task counters; /metrics must expose sweep_* series.
live_json= live_prom=
i=0
while [ $i -lt 150 ]; do
    if [ -z "$live_json" ] && curl -fsS "http://$addr/sweep" > "$tmp/sweep.json" 2>/dev/null; then
        live_json=1
    fi
    if [ -z "$live_prom" ] && curl -fsS "http://$addr/metrics" 2>/dev/null | grep -q '^supersim_sweep_tasks_total'; then
        live_prom=1
    fi
    if [ -n "$live_json" ] && [ -n "$live_prom" ]; then
        break
    fi
    if ! kill -0 "$sweep_pid" 2>/dev/null; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done

wait "$sweep_pid"
sweep_pid=
if [ -z "$live_json" ] || [ -z "$live_prom" ]; then
    echo "sweep-smoke: FAIL — dashboard on $addr never answered while the sweep ran (sweep log follows)" >&2
    cat "$tmp/sweep.log" >&2
    exit 1
fi
python3 - "$tmp/sweep.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc["tasks"]["total"] != 2:
    raise SystemExit(f"sweep-smoke: /sweep reported {doc['tasks']['total']} tasks, want 2")
EOF
echo "sweep-smoke: live /sweep JSON and /metrics Prometheus exposition OK"

# The sweep CSV itself: a header and one row per permutation.
rows=$(wc -l < "$tmp/sweep.csv")
if [ "$rows" -ne 3 ]; then
    echo "sweep-smoke: FAIL — sweep CSV has $rows lines, want 3" >&2
    cat "$tmp/sweep.csv" >&2
    exit 1
fi

# Run manifests: one valid JSON document per permutation, labeled with its
# sweep point.
for id in "CL=2" "CL=4"; do
    python3 - "$tmp/manifests/$id.manifest.json" "$id" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["schema"] == "supersim-manifest", m["schema"]
assert m["labels"]["point"] == sys.argv[2], m["labels"]
assert m["sim_ticks"] > 0 and m["events"] > 0
EOF
done
echo "sweep-smoke: run manifests OK"

echo "sweep-smoke: ssparse -tasks over the journal"
"$tmp/bin/ssparse" -tasks "$tmp/tasks.jsonl" -csv "$tmp/tasks.csv" | grep -E '^tasks: +2 \(2 succeeded'
task_rows=$(wc -l < "$tmp/tasks.csv")
if [ "$task_rows" -ne 3 ]; then
    echo "sweep-smoke: FAIL — task CSV has $task_rows lines, want 3" >&2
    exit 1
fi

echo "sweep-smoke: ssplot -plot taskgantt over the journal"
"$tmp/bin/ssplot" -plot taskgantt "$tmp/tasks.jsonl" | grep '^task gantt: 2 tasks'

echo "sweep-smoke: OK"

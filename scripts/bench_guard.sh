#!/bin/sh
# bench_guard.sh [ceiling-file] [spans]
#
# Allocation-regression guard for the traffic hot path: runs BenchmarkFigure5
# (the paper's end-to-end load/latency sweep point) with telemetry disabled and
# fails if allocs/op exceeds the committed ceiling in bench_ceiling.txt. The
# explicit workers=1 path (BenchmarkFigure5Workers/workers_1) is held to the
# same ceiling: parallel support must not cost the serial path anything.
#
# The ceiling is the contract behind the telemetry subsystem's "zero overhead
# when disabled" claim: probe hooks in the flit path must stay behind nil
# checks that the benchmark proves allocate nothing. Lower the ceiling when an
# optimization lands; raising it needs a justification in the PR.
#
# With a second argument of "spans", the guard additionally runs
# BenchmarkFigure5Spans (span recording at full sampling) and reports its
# numbers for EXPERIMENTS.md. That run is informational only — the ceiling is
# never enforced against the instrumented path.
set -eu

ceiling_file=${1:-bench_ceiling.txt}
with_spans=${2:-}
go=${GO:-go}

ceiling=$(awk '!/^[ \t]*(#|$)/ { print $1; exit }' "$ceiling_file")
if [ -z "$ceiling" ]; then
    echo "bench-guard: no ceiling found in $ceiling_file" >&2
    exit 2
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

"$go" test -run='^$' -bench='BenchmarkFigure5$' -benchtime=1x -benchmem . | tee "$out"

allocs=$(awk '/^BenchmarkFigure5/ { for (i = 1; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")
if [ -z "$allocs" ]; then
    echo "bench-guard: BenchmarkFigure5 produced no allocs/op line" >&2
    exit 2
fi

if [ "$allocs" -gt "$ceiling" ]; then
    echo "bench-guard: FAIL — BenchmarkFigure5 allocated $allocs/op, ceiling is $ceiling/op (bench_ceiling.txt)" >&2
    exit 1
fi
echo "bench-guard: OK — $allocs allocs/op <= ceiling $ceiling"

# The explicit -workers 1 path (simulation.workers set to 1) must be the same
# serial path: parallel support may not cost the default configuration
# anything, so the same ceiling applies.
"$go" test -run='^$' -bench='BenchmarkFigure5Workers/workers_1$' -benchtime=1x -benchmem . | tee "$out"

w1_allocs=$(awk '/^BenchmarkFigure5Workers\/workers_1/ { for (i = 1; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")
if [ -z "$w1_allocs" ]; then
    echo "bench-guard: BenchmarkFigure5Workers/workers_1 produced no allocs/op line" >&2
    exit 2
fi

if [ "$w1_allocs" -gt "$ceiling" ]; then
    echo "bench-guard: FAIL — workers=1 path allocated $w1_allocs/op, ceiling is $ceiling/op (bench_ceiling.txt)" >&2
    exit 1
fi
echo "bench-guard: OK — workers=1 path $w1_allocs allocs/op <= ceiling $ceiling"

# Sharded tracing cost, informational only: full-sampling flit tracing at
# workers=2 exercises per-shard lane recording plus the end-of-run stamp
# merge. The ceiling is never enforced against instrumented paths — it guards
# the tracing-DISABLED hot path above.
"$go" test -run='^$' -bench='BenchmarkFigure5TraceParallel$' -benchtime=1x -benchmem . | tee "$out"
trace_allocs=$(awk '/^BenchmarkFigure5TraceParallel/ { for (i = 1; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")
echo "bench-guard: traced workers=2 path allocated ${trace_allocs:-?} allocs/op (informational, not enforced)"

if [ "$with_spans" = "spans" ]; then
    "$go" test -run='^$' -bench='BenchmarkFigure5Spans$' -benchtime=1x -benchmem . | tee "$out"
    spans_allocs=$(awk '/^BenchmarkFigure5Spans/ { for (i = 1; i <= NF; i++) if ($(i) == "allocs/op") print $(i-1) }' "$out")
    echo "bench-guard: spans-enabled path allocated ${spans_allocs:-?} allocs/op (informational, not enforced)"
fi

#!/bin/sh
# check_cover.sh <floors-file>
#
# Runs `go test -cover ./...` and fails if any package's statement coverage
# falls below its committed floor. Packages without a floor entry are
# reported but do not fail the check; add a floor once the package has tests.
set -eu

floors=${1:-coverage_floors.txt}
go=${GO:-go}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

"$go" test -cover ./... | tee "$out"

awk -v floors="$floors" '
BEGIN {
    while ((getline line < floors) > 0) {
        if (line ~ /^[ \t]*(#|$)/) continue
        split(line, f, /[ \t]+/)
        floor[f[1]] = f[2] + 0
        seen[f[1]] = 0
    }
}
$1 == "ok" && /coverage:/ {
    pkg = $2
    for (i = 1; i <= NF; i++) {
        if ($i == "coverage:") { pct = $(i + 1); break }
    }
    if (pct ~ /^\[/) next  # "coverage: [no statements]"
    sub(/%$/, "", pct)
    if (pkg in floor) {
        seen[pkg] = 1
        if (pct + 0 < floor[pkg]) {
            printf "FAIL cover: %s at %s%% is below floor %d%%\n", pkg, pct, floor[pkg]
            bad = 1
        }
    } else {
        printf "note: %s at %s%% has no coverage floor\n", pkg, pct
    }
}
END {
    for (pkg in seen) {
        if (!seen[pkg]) {
            printf "FAIL cover: no coverage reported for %s (floor %d%%)\n", pkg, floor[pkg]
            bad = 1
        }
    }
    exit bad
}' "$out"
